//! Parallel execution engine for the experiment matrix.
//!
//! Every (configuration × benchmark) cell is an independent,
//! deterministic simulation, so the matrix is embarrassingly parallel.
//! [`prewarm`] shards the cells across `jobs` workers using the
//! work-stealing queue from [`ss_types::exec`]: each worker owns a
//! private [`Session`] (no shared mutable state while simulating) whose
//! on-disk cache is *sharded by construction* — one file per cell key,
//! and the queue hands every cell to exactly one worker, so no two
//! workers ever touch the same file.
//!
//! When the queue drains, the worker sessions are merged back into the
//! caller's session **in worker order** and failures are sorted by
//! (configuration, benchmark), so results and reports are deterministic
//! regardless of completion order. Report generation then runs
//! sequentially over the warmed session and produces byte-for-byte the
//! same output as a sequential run (verified by `tests/parallel.rs`).
//!
//! PR 1's fault isolation carries through unchanged: each cell still
//! runs under [`Session::try_run`]'s `catch_unwind`, so a panicking cell
//! becomes a [`crate::session::CellFailure`] in the merged session
//! without poisoning sibling cells or killing its worker.

use crate::configs::NamedConfig;
use crate::session::Session;
use ss_types::exec::{scoped_workers, CancelFlag, WorkQueue};
use ss_workloads::{Benchmark, BENCHMARKS};
use std::collections::HashSet;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The (configuration × benchmark) cells of a sweep over `cfgs`, in
/// deterministic (config, benchmark) order, deduplicated by cell name.
pub fn matrix(cfgs: &[NamedConfig]) -> Vec<(NamedConfig, &'static Benchmark)> {
    let mut seen = HashSet::new();
    let mut cells = Vec::new();
    for cfg in cfgs {
        for b in &BENCHMARKS {
            if seen.insert((cfg.name.clone(), b.name)) {
                cells.push((cfg.clone(), b));
            }
        }
    }
    cells
}

/// Live progress counters shared by the workers of one [`prewarm`] call.
pub struct Progress {
    /// Cells completed (success or failure).
    pub done: AtomicU64,
    /// Total cells in this sweep.
    pub total: u64,
    /// Simulated cycles accumulated by freshly-run cells (cache hits add
    /// nothing, keeping the throughput figure honest).
    pub sim_cycles: AtomicU64,
    /// Failed cells so far.
    pub failed: AtomicU64,
    started: Instant,
    live: bool,
}

impl Progress {
    fn new(total: u64, live: bool) -> Self {
        Progress {
            done: AtomicU64::new(0),
            total,
            sim_cycles: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            started: Instant::now(),
            live,
        }
    }

    /// One line summarizing the sweep so far:
    /// `cells done/total, aggregate sim-cycles/sec, failures`.
    pub fn line(&self) -> String {
        let done = self.done.load(Ordering::Relaxed);
        let cycles = self.sim_cycles.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let secs = self.started.elapsed().as_secs_f64().max(1e-9);
        let mut s = format!(
            "{done}/{} cells, {:.1}M sim-cycles/s",
            self.total,
            cycles as f64 / secs / 1e6
        );
        if failed > 0 {
            s.push_str(&format!(", {failed} FAILED"));
        }
        s
    }

    fn tick(&self, fresh_cycles: u64, failed: bool) {
        self.done.fetch_add(1, Ordering::Relaxed);
        self.sim_cycles.fetch_add(fresh_cycles, Ordering::Relaxed);
        if failed {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        if self.live {
            // Single atomic-ish write per cell; interleaving between
            // workers only ever mixes whole lines, and the final state
            // is printed by `prewarm` after the queue drains.
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r[prewarm] {}    ", self.line());
        }
    }
}

/// Outcome of a [`prewarm`] call.
pub struct PrewarmStats {
    /// Cells processed (simulated or recalled from disk).
    pub cells: u64,
    /// Cells that failed (also recorded in the session).
    pub failures: u64,
    /// Wall-clock seconds the sweep took.
    pub seconds: f64,
    /// Aggregate simulated cycles of freshly-run cells.
    pub sim_cycles: u64,
}

/// Groups fresh cells into work units for the queue. With `lanes <= 1`
/// each cell is its own unit (the reference per-cell path). With lanes,
/// cells sharing a benchmark — and therefore one decoded µ-op stream —
/// are grouped and chunked to at most `lanes` configurations per unit,
/// so each unit is exactly one lane batch and units still outnumber
/// workers on typical sweeps.
fn batch_units(
    cells: Vec<(NamedConfig, &'static Benchmark)>,
    lanes: usize,
) -> Vec<(Vec<NamedConfig>, &'static Benchmark)> {
    if lanes <= 1 {
        return cells.into_iter().map(|(c, b)| (vec![c], b)).collect();
    }
    // Group by benchmark, preserving first-seen order (matrix order is
    // deterministic, so unit order is too).
    let mut groups: Vec<(&'static Benchmark, Vec<NamedConfig>)> = Vec::new();
    for (cfg, bench) in cells {
        match groups.iter_mut().find(|(b, _)| b.name == bench.name) {
            Some((_, v)) => v.push(cfg),
            None => groups.push((bench, vec![cfg])),
        }
    }
    groups
        .into_iter()
        .flat_map(|(bench, cfgs)| {
            cfgs.chunks(lanes)
                .map(|c| (c.to_vec(), bench))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Runs every (configuration × benchmark) cell of `cfgs` that the
/// session has not already cached, sharded across `jobs` workers, and
/// merges the results into `sess`.
///
/// With `lanes > 1`, cells sharing a benchmark are grouped into lane
/// batches ([`Session::try_run_batch`]): one decoded µ-op stream feeds
/// up to `lanes` simulations stepped through a single driver loop.
/// Results are bit-identical to the per-cell path; the progress line
/// still advances per *cell*, not per batch.
///
/// With `jobs <= 1` the single worker runs on the calling thread — the
/// sequential code path, byte for byte. `cancel` stops the sweep at the
/// next cell boundary (completed cells stay cached; a cancelled batch
/// records only its finished lanes). `live_progress` draws a
/// `\r`-refreshed progress line on stderr; pass `false` when stderr is
/// being captured.
pub fn prewarm(
    sess: &mut Session,
    cfgs: &[NamedConfig],
    jobs: usize,
    lanes: usize,
    cancel: &CancelFlag,
    live_progress: bool,
) -> PrewarmStats {
    let cells: Vec<_> = matrix(cfgs)
        .into_iter()
        .filter(|(c, b)| !sess.is_cached(c, b))
        .collect();
    let total = cells.len() as u64;
    let units = batch_units(cells, lanes);
    let progress = Progress::new(total, live_progress);
    let queue = WorkQueue::with_cancel(units.len(), cancel.clone());
    let started = Instant::now();
    let workers = scoped_workers(jobs, |_worker| {
        let mut local = sess.fork_worker();
        while let Some(i) = queue.take() {
            let (unit_cfgs, bench) = &units[i];
            local.try_run_batch(unit_cfgs, bench, lanes, cancel, |fresh, failed| {
                progress.tick(fresh, failed);
            });
        }
        local
    });
    if live_progress && total > 0 {
        eprintln!("\r[prewarm] {}    ", progress.line());
    }
    for w in workers {
        sess.merge(w);
    }
    sess.sort_failures();
    PrewarmStats {
        cells: progress.done.load(Ordering::Relaxed),
        failures: progress.failed.load(Ordering::Relaxed),
        seconds: started.elapsed().as_secs_f64(),
        sim_cycles: progress.sim_cycles.load(Ordering::Relaxed),
    }
}
