//! The `experiments trace` subcommand: capture a µ-op window from one
//! (or two) configurations over a benchmark and render it through the
//! Perfetto exporter or the ASCII pipeview.
//!
//! ```text
//! experiments trace --bench NAME --config SPEC [--config SPEC2]
//!                   [--window LO..HI] [--format perfetto|pipeview]
//!                   [--out FILE]
//! ```
//!
//! `--window LO..HI` selects a half-open µ-op sequence window (default
//! `0..200`). With one `--config` the window renders directly; with two
//! and `--format pipeview`, both configurations run the same kernel and
//! the renderer prints a relative-cycle diff of their pipelines (the
//! fastest way to see *where* a scheduling policy wins or loses).
//!
//! Configuration specs use the canonical [`ConfigSpec`] grammar
//! (`Baseline_2`, `SpecSched_4_Crit`, ...); benchmarks come from the
//! registry in `ss-workloads` (`fp_compute`, `ptr_chase_big`, ...).

use crate::configs::ConfigSpec;
use crate::session::WORKLOAD_SEED;
use ss_core::Simulator;
use ss_trace::{perfetto, pipeview, CaptureSink, TraceEvent};
use ss_workloads::{benchmark, benchmark_names, Benchmark, KernelTrace};
use std::ops::Range;
use std::path::PathBuf;

/// Output renderer selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Chrome-trace-event JSON for <https://ui.perfetto.dev>.
    Perfetto,
    /// Konata-style ASCII pipeline view (or diff, with two configs).
    Pipeview,
}

/// Parsed command line for `experiments trace`.
#[derive(Debug)]
struct TraceArgs {
    bench: &'static Benchmark,
    configs: Vec<ConfigSpec>,
    window: Range<u64>,
    format: Format,
    out: Option<PathBuf>,
    check: bool,
}

const USAGE: &str = "usage: experiments trace --bench NAME --config SPEC [--config SPEC2] \
                     [--window LO..HI] [--format perfetto|pipeview] [--out FILE] [--check]";

fn parse_window(s: &str) -> Result<Range<u64>, String> {
    let (lo, hi) = s
        .split_once("..")
        .ok_or_else(|| format!("--window wants `LO..HI`, got `{s}`"))?;
    let lo: u64 = lo
        .parse()
        .map_err(|_| format!("--window: `{lo}` is not a µ-op sequence number"))?;
    let hi: u64 = hi
        .parse()
        .map_err(|_| format!("--window: `{hi}` is not a µ-op sequence number"))?;
    if lo >= hi {
        return Err(format!("--window: empty window {lo}..{hi}"));
    }
    Ok(lo..hi)
}

fn parse_args(args: &[String]) -> Result<TraceArgs, String> {
    let mut bench: Option<&'static Benchmark> = None;
    let mut configs: Vec<ConfigSpec> = Vec::new();
    let mut window = 0..200u64;
    let mut format = Format::Pipeview;
    let mut out = None;
    let mut check = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match a.as_str() {
            "--bench" => {
                let name = value("--bench")?;
                bench = Some(benchmark(&name).ok_or_else(|| {
                    format!(
                        "unknown benchmark `{name}`; available: {}",
                        benchmark_names().join(", ")
                    )
                })?);
            }
            "--config" => {
                let spec = value("--config")?;
                configs.push(spec.parse::<ConfigSpec>().map_err(|e| e.to_string())?);
            }
            "--window" => window = parse_window(&value("--window")?)?,
            "--format" => {
                format = match value("--format")?.as_str() {
                    "perfetto" => Format::Perfetto,
                    "pipeview" => Format::Pipeview,
                    other => {
                        return Err(format!("--format wants perfetto|pipeview, got `{other}`"))
                    }
                }
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--check" => check = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    let bench = bench.ok_or_else(|| format!("--bench is required\n{USAGE}"))?;
    if configs.is_empty() {
        return Err(format!("at least one --config is required\n{USAGE}"));
    }
    if configs.len() > 2 {
        return Err("at most two --config values (the second selects diff mode)".to_string());
    }
    if configs.len() == 2 && format == Format::Perfetto {
        return Err(
            "--format perfetto renders one configuration; diffing needs --format pipeview"
                .to_string(),
        );
    }
    Ok(TraceArgs {
        bench,
        configs,
        window,
        format,
        out,
        check,
    })
}

/// `--check`: self-validate the rendered document. Perfetto output must
/// pass the schema-checking JSON parser; a pipeview must contain at
/// least one µ-op row.
fn check_output(format: Format, doc: &str) -> Result<(), String> {
    match format {
        Format::Perfetto => {
            let s = ss_trace::json::validate_chrome_trace(doc)
                .map_err(|e| format!("perfetto output failed schema validation: {e}"))?;
            if s.spans == 0 {
                return Err("perfetto output contains no stage spans".to_string());
            }
            eprintln!(
                "[trace check: {} spans, {} instants, {} flows, {} counters, {} metadata]",
                s.spans, s.instants, s.flows, s.counters, s.metadata
            );
        }
        Format::Pipeview => {
            if !doc.contains("u0") && !doc.lines().any(|l| l.starts_with('u')) {
                return Err("pipeview output contains no µ-op rows".to_string());
            }
        }
    }
    Ok(())
}

/// Runs `spec` over `bench` with a windowed capture sink attached and
/// returns the captured events.
///
/// Committed sequence numbers are dense (flushed wrong-path µ-ops hand
/// their numbers back), so running until `window.end` µ-ops have
/// committed guarantees every in-window µ-op has completed its
/// lifecycle.
fn capture(
    spec: ConfigSpec,
    bench: &Benchmark,
    window: Range<u64>,
) -> Result<Vec<TraceEvent>, String> {
    let named = spec.named();
    let kernel = (bench.build)(WORKLOAD_SEED);
    let mut sim = Simulator::with_sink(
        named.config,
        KernelTrace::new(kernel),
        CaptureSink::with_window(window.clone()),
    );
    sim.try_run_committed(window.end)
        .map_err(|e| format!("{spec} on {}: {e}", bench.name))?;
    Ok(sim.into_sink().into_events())
}

fn render(args: &TraceArgs) -> Result<String, String> {
    let first = capture(args.configs[0], args.bench, args.window.clone())?;
    match (args.format, args.configs.len()) {
        (Format::Perfetto, _) => Ok(perfetto::export_chrome_trace(&first)),
        (Format::Pipeview, 1) => Ok(format!(
            "# {} on {} (seq {}..{})\n{}",
            args.configs[0],
            args.bench.name,
            args.window.start,
            args.window.end,
            pipeview::render(&first)
        )),
        (Format::Pipeview, _) => {
            let second = capture(args.configs[1], args.bench, args.window.clone())?;
            Ok(format!(
                "# {} vs {} on {} (seq {}..{})\n{}",
                args.configs[0],
                args.configs[1],
                args.bench.name,
                args.window.start,
                args.window.end,
                pipeview::diff(
                    &args.configs[0].to_string(),
                    &first,
                    &args.configs[1].to_string(),
                    &second,
                )
            ))
        }
    }
}

/// Entry point for `experiments trace ...`; returns the process exit
/// code.
pub fn run_cli(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return 0;
    }
    let parsed = match parse_args(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let doc = match render(&parsed) {
        Ok(d) => d,
        Err(msg) => {
            eprintln!("trace: {msg}");
            return 1;
        }
    };
    if parsed.check {
        if let Err(msg) = check_output(parsed.format, &doc) {
            eprintln!("trace: {msg}");
            return 1;
        }
    }
    match &parsed.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("trace: cannot write {}: {e}", path.display());
                return 1;
            }
            eprintln!("[trace written to {}]", path.display());
        }
        None => print!("{doc}"),
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn window_parses_and_rejects() {
        assert_eq!(parse_window("0..200").unwrap(), 0..200);
        assert_eq!(parse_window("50..60").unwrap(), 50..60);
        assert!(parse_window("60..50").is_err());
        assert!(parse_window("5..5").is_err());
        assert!(parse_window("abc").is_err());
        assert!(parse_window("1..x").is_err());
    }

    #[test]
    fn args_require_bench_and_config() {
        assert!(parse_args(&s(&["--config", "Baseline_2"])).is_err());
        assert!(parse_args(&s(&["--bench", "fp_compute"])).is_err());
        let ok = parse_args(&s(&["--bench", "fp_compute", "--config", "Baseline_2"])).unwrap();
        assert_eq!(ok.bench.name, "fp_compute");
        assert_eq!(ok.window, 0..200);
        assert_eq!(ok.format, Format::Pipeview);
    }

    #[test]
    fn perfetto_diff_is_rejected() {
        let r = parse_args(&s(&[
            "--bench",
            "fp_compute",
            "--config",
            "Baseline_2",
            "--config",
            "SpecSched_2",
            "--format",
            "perfetto",
        ]));
        assert!(r.is_err());
    }

    #[test]
    fn unknown_bench_lists_registry() {
        let e = parse_args(&s(&["--bench", "nope", "--config", "Baseline_2"])).unwrap_err();
        assert!(e.contains("fp_compute"), "{e}");
    }

    #[test]
    fn captured_window_renders_through_both_sinks() {
        let spec: ConfigSpec = "SpecSched_2".parse().unwrap();
        let bench = benchmark("fp_compute").unwrap();
        let events = capture(spec, bench, 0..64).unwrap();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::Commit { seq, .. } if seq.get() == 63)),
            "window tail must commit"
        );
        let pv = pipeview::render(&events);
        assert!(pv.contains("u63"), "{pv}");
        let json = perfetto::export_chrome_trace(&events);
        ss_trace::json::validate_chrome_trace(&json).expect("schema-valid");
    }

    #[test]
    fn diff_of_identical_configs_reports_no_differences() {
        let spec: ConfigSpec = "Baseline_0".parse().unwrap();
        let bench = benchmark("mix_int").unwrap();
        let a = capture(spec, bench, 0..32).unwrap();
        let b = capture(spec, bench, 0..32).unwrap();
        assert_eq!(a, b, "same config + kernel must capture identically");
        let d = pipeview::diff("a", &a, "b", &b);
        assert!(d.contains("0 rows differ"), "{d}");
    }
}
