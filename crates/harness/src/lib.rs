//! Experiment harness regenerating every table and figure of
//! *Cost-Effective Speculative Scheduling in High Performance Processors*
//! (Perais et al., ISCA 2015).
//!
//! * [`configs`] — the paper's named machine configurations
//!   (`Baseline_*`, `SpecSched_*`, `_Shift`, `_Ctr`, `_Filter`,
//!   `_Combined`, `_Crit`) plus the DESIGN.md ablations.
//! * [`session`] — cached simulation execution.
//! * [`experiments`] — one regenerator per table/figure; each returns a
//!   [`report::Report`] with the same rows/series the paper plots.
//! * [`report`] — tables, gmean, CSV.
//!
//! The `experiments` binary drives everything:
//!
//! ```text
//! cargo run -r -p ss-harness --bin experiments -- all
//! cargo run -r -p ss-harness --bin experiments -- fig5 --quick
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod configs;
pub mod energy;
pub mod experiments;
pub mod report;
pub mod session;

pub use configs::NamedConfig;
pub use energy::EnergyModel;
pub use report::{gmean, Report, Table};
pub use session::{CellFailure, Session};
