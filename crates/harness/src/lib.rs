//! Experiment harness regenerating every table and figure of
//! *Cost-Effective Speculative Scheduling in High Performance Processors*
//! (Perais et al., ISCA 2015).
//!
//! * [`configs`] — the typed configuration name ([`ConfigSpec`]) and the
//!   paper's named machine configurations (`Baseline_*`, `SpecSched_*`,
//!   `_Shift`, `_Ctr`, `_Filter`, `_Combined`, `_Crit`) plus the
//!   DESIGN.md ablations.
//! * [`session`] — cached, fault-isolating simulation execution.
//! * [`exec`] — the parallel execution engine sharding the
//!   (configuration × benchmark) matrix across worker threads.
//! * [`experiments`] — one regenerator per table/figure; each returns a
//!   [`report::Report`] with the same rows/series the paper plots.
//! * [`journal`] — the crash-safe sweep journal: an fsync'd record of
//!   completed cells that lets a killed sweep resume without guesswork.
//! * [`fuzz`] — the deterministic differential fuzz campaign: random
//!   (config × kernel × fault plan) cells checked against the in-order
//!   golden model, with an automatic shrinker and repro files.
//! * [`snapfuzz`] — the snapshot-corruption fuzzer: seeded bit-flips,
//!   truncations, and section swaps against the checkpoint container,
//!   proving every corruption maps to a typed error.
//! * [`chaos`] — the `experiments chaos` fault-injection harness that
//!   proves the serve layer self-heals under seeded worker panics,
//!   client disconnects, protocol garbage, deadlines, and SIGKILL.
//! * [`serve`] — simulation-as-a-service: the `experiments serve`
//!   resident batch server executing [`ss_core::RunRequest`]s over a
//!   Unix-domain socket with priority queues, admission control, and a
//!   memoized results cache pre-populated from sweep journals.
//! * [`report`] — tables, gmean, CSV.
//! * [`rvrun`] — the `experiments rvrun` subcommand: run a real RV32IM
//!   program from the `ss-frontend` suite through the pipeline under a
//!   configuration ladder with the commit oracle cross-checking every
//!   committed µ-op.
//! * [`tracecmd`] — the `experiments trace` subcommand: capture a µ-op
//!   window with the `ss-trace` observability sinks and render it as
//!   Perfetto JSON or an ASCII pipeview (including two-config diffs).
//!
//! The `experiments` binary drives everything:
//!
//! ```text
//! cargo run -r -p ss-harness --bin experiments -- all
//! cargo run -r -p ss-harness --bin experiments -- fig5 --quick
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod chaos;
pub mod configs;
pub mod energy;
pub mod exec;
pub mod experiments;
pub mod fuzz;
pub mod journal;
pub mod report;
pub mod rvrun;
pub mod serve;
pub mod session;
pub mod snapfuzz;
pub mod tracecmd;

pub use configs::{ConfigFamily, ConfigSpec, ConfigVariant, NamedConfig};
pub use energy::EnergyModel;
pub use exec::{prewarm, PrewarmStats};
pub use fuzz::{FuzzCell, FuzzOptions, FuzzOutcome, FuzzReport};
pub use report::{gmean, Report, Table};
pub use serve::{ServeOptions, Server};
pub use session::{CellFailure, Session};
