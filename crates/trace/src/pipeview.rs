//! Konata / gem5-O3-style ASCII pipeview.
//!
//! Renders a captured event stream as one row per µ-op *generation*
//! (a sequence number's life between being fetched and being
//! committed or flushed — branch flushes reuse sequence numbers, so a
//! repeated `Fetch` for the same seq starts a new row) with one glyph
//! column per cycle:
//!
//! ```text
//! u3.0 ld   pc=0x418 |F...D==I~eE--=C       |
//! u4.0 alu  pc=0x420 |.F...D==I~R=I~eEC     |
//! ```
//!
//! Glyphs: `F` fetch, `.` frontend transit, `D` rename/dispatch, `=`
//! waiting in IQ/ROB, `w` speculative wakeup broadcast, `I` issue, `~`
//! issue-to-execute transit, `e` execute start, `E` executing, `-`
//! complete (awaiting commit), `R` replay squash, `r` waiting in the
//! recovery buffer, `C` commit, `X` branch flush.
//!
//! Cycles are rendered *relative to the window's first event*, which
//! keeps two runs of the same kernel window comparable even when their
//! absolute cycle counts differ — that is what [`diff`] exploits to give
//! a terminal A/B view of two configurations.

use ss_types::trace::{class_code, TraceEvent};
use std::collections::HashMap;
use std::fmt::Write;

/// Upper bound on rendered columns per row; wider windows are clipped to
/// their tail with a note. Keeps deadlock traces readable in a terminal.
pub const MAX_COLS: u64 = 240;

/// Glyph priority: later pipeline facts overwrite earlier fills.
fn prio(g: char) -> u8 {
    match g {
        'C' | 'X' => 9,
        'R' => 8,
        'E' | 'e' => 7,
        'I' => 6,
        'r' => 5,
        'w' => 4,
        'D' => 3,
        'F' => 2,
        '~' | '=' | '.' | '-' => 1,
        _ => 0,
    }
}

#[derive(Debug)]
struct Row {
    seq: u64,
    gen: u32,
    desc: String,
    /// cycle -> glyph (highest priority wins).
    cells: HashMap<u64, char>,
    first: u64,
    last: u64,
    /// Cycle of the most recent event, and the fill glyph that extends
    /// from it until the next event lands.
    fill_from: u64,
    fill_glyph: Option<char>,
    /// Execute completion cycle, for switching `E` fill to `-`.
    done_at: Option<u64>,
    closed: bool,
}

impl Row {
    fn new(seq: u64, gen: u32, cycle: u64) -> Self {
        Row {
            seq,
            gen,
            desc: String::new(),
            cells: HashMap::new(),
            first: cycle,
            last: cycle,
            fill_from: cycle,
            fill_glyph: None,
            done_at: None,
            closed: false,
        }
    }

    fn put(&mut self, cycle: u64, glyph: char) {
        self.first = self.first.min(cycle);
        self.last = self.last.max(cycle);
        let cell = self.cells.entry(cycle).or_insert(glyph);
        if prio(glyph) > prio(*cell) {
            *cell = glyph;
        }
    }

    /// Lays down the pending fill up to (exclusive) `cycle`, honouring
    /// the execute-completion switch from `E` to `-`.
    fn fill_to(&mut self, cycle: u64) {
        if let Some(g) = self.fill_glyph {
            for c in (self.fill_from + 1)..cycle {
                let eff = match (g, self.done_at) {
                    ('E', Some(done)) if c >= done => '-',
                    _ => g,
                };
                self.put(c, eff);
            }
        }
    }

    fn event(&mut self, cycle: u64, glyph: char, next_fill: Option<char>) {
        self.fill_to(cycle);
        self.put(cycle, glyph);
        self.fill_from = cycle;
        self.fill_glyph = next_fill;
    }
}

/// A built pipeview, ready to render.
#[derive(Debug)]
pub struct Pipeview {
    rows: Vec<Row>,
    min_cycle: u64,
    max_cycle: u64,
}

/// Builds the per-generation rows from an event stream (any order; the
/// per-event cycle stamps are authoritative).
pub fn build(events: &[TraceEvent]) -> Pipeview {
    let mut rows: Vec<Row> = Vec::new();
    // seq -> index of its live (latest-generation) row.
    let mut live: HashMap<u64, usize> = HashMap::new();
    let mut generations: HashMap<u64, u32> = HashMap::new();

    // Events are emitted in discovery order; `Fetch` is back-dated, so
    // sort by cycle with the original index as a stable tiebreak to keep
    // generation splitting correct.
    let mut ordered: Vec<(usize, &TraceEvent)> = events.iter().enumerate().collect();
    ordered.sort_by_key(|(i, e)| (e.cycle().get(), *i));

    let row_for = |rows: &mut Vec<Row>,
                   live: &mut HashMap<u64, usize>,
                   generations: &mut HashMap<u64, u32>,
                   seq: u64,
                   cycle: u64,
                   is_fetch: bool|
     -> usize {
        let needs_new = match live.get(&seq) {
            Some(&idx) => (is_fetch && !rows[idx].cells.is_empty()) || rows[idx].closed,
            None => true,
        };
        if needs_new {
            let gen = *generations.entry(seq).and_modify(|g| *g += 1).or_insert(0);
            rows.push(Row::new(seq, gen, cycle));
            live.insert(seq, rows.len() - 1);
        }
        live[&seq]
    };

    let mut min_cycle = u64::MAX;
    let mut max_cycle = 0u64;
    for (_, ev) in ordered {
        let cycle = ev.cycle().get();
        let Some(seq) = ev.seq() else {
            continue; // occupancy: no pipeview row
        };
        min_cycle = min_cycle.min(cycle);
        max_cycle = max_cycle.max(cycle);
        let is_fetch = matches!(ev, TraceEvent::Fetch { .. });
        let idx = row_for(
            &mut rows,
            &mut live,
            &mut generations,
            seq.get(),
            cycle,
            is_fetch,
        );
        let row = &mut rows[idx];
        match *ev {
            TraceEvent::Fetch {
                pc,
                class,
                wrong_path,
                ..
            } => {
                row.desc = format!(
                    "{:<5} pc={:#x}{}",
                    class_code(class),
                    pc.get(),
                    if wrong_path { " wp" } else { "" }
                );
                row.event(cycle, 'F', Some('.'));
            }
            TraceEvent::Rename { .. } => row.event(cycle, 'D', Some('=')),
            TraceEvent::SpecWakeup { .. } => row.event(cycle, 'w', Some('=')),
            TraceEvent::Issue { .. } => row.event(cycle, 'I', Some('~')),
            TraceEvent::Execute { done_at, .. } => {
                row.done_at = Some(done_at.get());
                row.event(cycle, 'e', Some('E'));
            }
            TraceEvent::ReplaySquash { .. } => row.event(cycle, 'R', Some('=')),
            TraceEvent::RecoveryEnter { .. } => row.event(cycle, 'r', Some('r')),
            TraceEvent::Commit { .. } => {
                row.event(cycle, 'C', None);
                row.closed = true;
            }
            TraceEvent::Flush { .. } => {
                row.event(cycle, 'X', None);
                row.closed = true;
            }
            TraceEvent::Occupancy { .. } => unreachable!("filtered above"),
        }
    }
    if min_cycle == u64::MAX {
        min_cycle = 0;
    }
    rows.sort_by_key(|r| (r.first, r.seq, r.gen));
    Pipeview {
        rows,
        min_cycle,
        max_cycle,
    }
}

impl Pipeview {
    /// Number of µ-op generation rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the event stream held no per-µ-op events.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the view with the default column clip ([`MAX_COLS`]).
    pub fn render(&self) -> String {
        self.render_clipped(MAX_COLS)
    }

    /// Renders with at most `max_cols` cycle columns (the window's tail
    /// wins when clipped).
    pub fn render_clipped(&self, max_cols: u64) -> String {
        let max_cols = max_cols.max(10);
        let span = self.max_cycle.saturating_sub(self.min_cycle) + 1;
        let (base, cols, clipped) = if span > max_cols {
            (self.max_cycle - max_cols + 1, max_cols, true)
        } else {
            (self.min_cycle, span, false)
        };
        let label_w = self
            .rows
            .iter()
            .map(|r| row_label(r).chars().count())
            .max()
            .unwrap_or(8)
            .max(8);

        let mut out = String::new();
        let _ = writeln!(
            out,
            "pipeview: {} uops, cycles {}..{} (rendered relative to {})",
            self.rows.len(),
            self.min_cycle,
            self.max_cycle,
            base
        );
        if clipped {
            let _ = writeln!(
                out,
                "  [window wider than {max_cols} cycles; showing the tail]"
            );
        }
        out.push_str(
            "legend: F fetch  D rename  w spec-wakeup  I issue  e/E execute  - done  \
             R replay-squash  r recovery  C commit  X flush\n",
        );

        // Cycle ruler: a tick every 10 relative cycles.
        let mut ruler = format!("{:>w$} |", "cycle", w = label_w);
        for c in 0..cols {
            if c % 10 == 0 {
                let tick = (c % 100) / 10;
                ruler.push(char::from_digit(tick as u32, 10).unwrap_or('?'));
            } else {
                ruler.push(' ');
            }
        }
        ruler.push('|');
        out.push_str(&ruler);
        out.push('\n');

        for row in &self.rows {
            if row.last < base {
                continue; // entirely before the clipped window
            }
            let _ = write!(out, "{:>w$} |", row_label(row), w = label_w);
            for c in 0..cols {
                let cycle = base + c;
                let g = if cycle < row.first || cycle > row.last {
                    ' '
                } else {
                    row.cells.get(&cycle).copied().unwrap_or(' ')
                };
                out.push(g);
            }
            out.push('|');
            out.push('\n');
        }
        out
    }

    /// Stable per-row keys and timeline strings (relative cycles),
    /// used by [`diff`].
    fn keyed_lines(&self) -> Vec<(String, String)> {
        let base = self.min_cycle;
        self.rows
            .iter()
            .map(|r| {
                let mut line = String::new();
                for c in r.first..=r.last {
                    line.push(r.cells.get(&c).copied().unwrap_or(' '));
                }
                (
                    format!("u{}.{} {}", r.seq, r.gen, r.desc),
                    format!("@{} {}", r.first - base, line),
                )
            })
            .collect()
    }
}

fn row_label(r: &Row) -> String {
    format!("u{}.{} {}", r.seq, r.gen, r.desc)
}

/// Renders an event stream with the default clip.
pub fn render(events: &[TraceEvent]) -> String {
    build(events).render()
}

/// Terminal A/B diff of two configurations over the same kernel window.
///
/// Rows are matched by µ-op (seq, generation, decoded form); matching
/// rows with identical relative timelines collapse to one line, while
/// differing rows are shown stacked (`a:` / `b:`) and flagged with `!`.
/// Timelines are compared in *relative* cycles (offset from each
/// window's own first event), so a uniform latency shift still diffs
/// clean per-row shapes.
pub fn diff(label_a: &str, a: &[TraceEvent], label_b: &str, b: &[TraceEvent]) -> String {
    let va = build(a);
    let vb = build(b);
    let la: Vec<_> = va.keyed_lines();
    let lb: HashMap<String, String> = vb.keyed_lines().into_iter().collect();
    let ka: HashMap<String, String> = la.iter().cloned().collect();

    let mut out = String::new();
    let _ = writeln!(out, "pipeview diff: a={label_a}  b={label_b}");
    let _ = writeln!(
        out,
        "a: {} uops over {} cycles; b: {} uops over {} cycles",
        va.len(),
        va.max_cycle.saturating_sub(va.min_cycle) + 1,
        vb.len(),
        vb.max_cycle.saturating_sub(vb.min_cycle) + 1,
    );
    let mut same = 0usize;
    let mut differ = 0usize;
    for (key, line_a) in &la {
        match lb.get(key) {
            Some(line_b) if line_b == line_a => {
                same += 1;
                let _ = writeln!(out, "  {key} {line_a}");
            }
            Some(line_b) => {
                differ += 1;
                let _ = writeln!(out, "! {key}");
                let _ = writeln!(out, "    a: {line_a}");
                let _ = writeln!(out, "    b: {line_b}");
            }
            None => {
                differ += 1;
                let _ = writeln!(out, "! {key} only in a: {line_a}");
            }
        }
    }
    for (key, line_b) in vb.keyed_lines() {
        if !ka.contains_key(&key) {
            differ += 1;
            let _ = writeln!(out, "! {key} only in b: {line_b}");
        }
    }
    let _ = writeln!(out, "{same} rows identical, {differ} rows differ");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::{Cycle, OpClass, Pc, ReplayCause, SeqNum};

    fn ev_fetch(c: u64, s: u64) -> TraceEvent {
        TraceEvent::Fetch {
            cycle: Cycle::new(c),
            seq: SeqNum::new(s),
            pc: Pc::new(0x400 + 4 * s),
            class: OpClass::IntAlu,
            wrong_path: false,
        }
    }

    fn lifecycle(s: u64, base: u64) -> Vec<TraceEvent> {
        vec![
            ev_fetch(base, s),
            TraceEvent::Rename {
                cycle: Cycle::new(base + 4),
                seq: SeqNum::new(s),
            },
            TraceEvent::Issue {
                cycle: Cycle::new(base + 6),
                seq: SeqNum::new(s),
                from_recovery: false,
            },
            TraceEvent::Execute {
                cycle: Cycle::new(base + 10),
                seq: SeqNum::new(s),
                done_at: Cycle::new(base + 12),
            },
            TraceEvent::Commit {
                cycle: Cycle::new(base + 15),
                seq: SeqNum::new(s),
            },
        ]
    }

    #[test]
    fn renders_full_lifecycle_glyphs() {
        let view = build(&lifecycle(3, 100));
        assert_eq!(view.len(), 1);
        let text = view.render();
        let row = text
            .lines()
            .find(|l| l.contains("u3.0"))
            .expect("row present");
        let timeline: String = row.chars().skip_while(|&c| c != '|').collect();
        assert_eq!(timeline, "|F...D=I~~~eE---C|", "{text}");
    }

    #[test]
    fn branch_flush_reuse_splits_generations() {
        let mut events = vec![ev_fetch(0, 5)];
        events.push(TraceEvent::Flush {
            cycle: Cycle::new(3),
            seq: SeqNum::new(5),
        });
        events.extend(lifecycle(5, 10));
        let view = build(&events);
        assert_eq!(view.len(), 2, "flushed and refetched generations");
        let text = view.render();
        assert!(text.contains("u5.0"), "{text}");
        assert!(text.contains("u5.1"), "{text}");
        assert!(text.lines().any(|l| l.contains("u5.0") && l.contains('X')));
    }

    #[test]
    fn replay_and_recovery_glyphs_appear() {
        let events = vec![
            ev_fetch(0, 1),
            TraceEvent::Issue {
                cycle: Cycle::new(5),
                seq: SeqNum::new(1),
                from_recovery: false,
            },
            TraceEvent::ReplaySquash {
                cycle: Cycle::new(8),
                seq: SeqNum::new(1),
                trigger: SeqNum::new(0),
                cause: ReplayCause::L1Miss,
            },
            TraceEvent::RecoveryEnter {
                cycle: Cycle::new(8),
                seq: SeqNum::new(1),
            },
            TraceEvent::Issue {
                cycle: Cycle::new(12),
                seq: SeqNum::new(1),
                from_recovery: true,
            },
        ];
        let text = render(&events);
        let row = text.lines().find(|l| l.contains("u1.0")).expect("row");
        assert!(row.contains('R') && row.contains('r'), "{row}");
        assert_eq!(row.matches('I').count(), 2, "{row}");
    }

    #[test]
    fn clipping_keeps_the_tail() {
        let mut events = lifecycle(0, 0);
        events.extend(lifecycle(1, 500));
        let text = build(&events).render_clipped(50);
        assert!(text.contains("showing the tail"), "{text}");
        assert!(text.contains("u1.0"), "{text}");
        assert!(!text.lines().any(|l| l.contains("u0.0")), "{text}");
    }

    #[test]
    fn diff_flags_changed_rows_only() {
        let a = lifecycle(0, 100);
        let b = {
            // Same shape shifted by a constant → identical relative rows.
            lifecycle(0, 900)
        };
        let d = diff("fast", &a, "slow", &b);
        assert!(d.contains("1 rows identical, 0 rows differ"), "{d}");

        let mut c = lifecycle(0, 100);
        c[2] = TraceEvent::Issue {
            cycle: Cycle::new(108),
            seq: SeqNum::new(0),
            from_recovery: false,
        };
        let d2 = diff("a", &a, "b", &c);
        assert!(d2.contains("0 rows identical, 1 rows differ"), "{d2}");
        assert!(d2.lines().any(|l| l.starts_with("! u0.0")), "{d2}");
    }

    #[test]
    fn diff_reports_one_sided_rows() {
        let a = lifecycle(0, 0);
        let mut b = lifecycle(0, 0);
        b.extend(lifecycle(1, 20));
        let d = diff("a", &a, "b", &b);
        assert!(d.contains("only in b"), "{d}");
    }

    #[test]
    fn empty_stream_renders_without_panic() {
        let view = build(&[]);
        assert!(view.is_empty());
        assert!(view.render().contains("0 uops"));
    }
}
