//! Pipeline observability: trace sinks, Perfetto export, and a
//! Konata-style ASCII pipeview.
//!
//! The event vocabulary and the [`TraceSink`] contract live in
//! [`ss_types::trace`]; the pipeline in `ss-core` feeds whatever sink it
//! is monomorphized with. This crate supplies the sinks worth having and
//! the two renderers that turn a captured event stream into something a
//! human can read:
//!
//! * [`RingSink`] — bounded ring of the most recent events; the default
//!   capture for fuzzing and failure reports ("flight recorder").
//! * [`CaptureSink`] — keeps everything (optionally only a µ-op sequence
//!   window) for offline rendering.
//! * [`SpillSink`] — streams the stable one-line text encoding to any
//!   `io::Write` for full-run captures too large for memory, with
//!   [`read_spill`] to load them back.
//! * [`perfetto::export_chrome_trace`] — Chrome-trace-event JSON
//!   (`chrome://tracing`, [Perfetto](https://ui.perfetto.dev)): one
//!   track per pipeline stage, counter tracks for occupancy, and flow
//!   events linking a replay-triggering load to every squashed
//!   dependent.
//! * [`pipeview`] — gem5-O3/Konata-style ASCII rendering of per-µ-op
//!   stage timelines, plus a two-config differ for terminal A/B reading
//!   of the same kernel window.
//! * [`json`] — a minimal hand-rolled JSON parser (the workspace has no
//!   external dependencies) used by
//!   [`json::validate_chrome_trace`] to schema-check exported traces in
//!   tests and CI.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod capture;
pub mod json;
pub mod perfetto;
pub mod pipeview;
mod ring;
mod spill;

pub use capture::CaptureSink;
pub use ring::RingSink;
pub use spill::{read_spill, SpillSink};

// Re-export the vocabulary so sink users need only one crate.
pub use ss_types::trace::{NullSink, TraceEvent, TraceSink};
