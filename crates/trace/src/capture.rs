//! Unbounded capture sink with an optional µ-op sequence window.

use ss_types::trace::{TraceEvent, TraceSink};
use ss_types::SeqNum;
use std::ops::Range;

/// Keeps every recorded event (optionally filtered to a half-open µ-op
/// sequence window) for offline rendering through the Perfetto exporter
/// or the pipeview.
///
/// Per-cycle [`TraceEvent::Occupancy`] samples carry no sequence number
/// and always pass the filter — the renderers decide whether to use
/// them.
#[derive(Debug, Clone, Default)]
pub struct CaptureSink {
    events: Vec<TraceEvent>,
    window: Option<Range<u64>>,
}

impl CaptureSink {
    /// Captures everything.
    pub fn new() -> Self {
        CaptureSink::default()
    }

    /// Captures only events whose µ-op sequence number falls in
    /// `window` (half-open), plus all occupancy samples.
    pub fn with_window(window: Range<u64>) -> Self {
        CaptureSink {
            events: Vec::new(),
            window: Some(window),
        }
    }

    /// The captured events in discovery order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the captured events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    fn wants(&self, seq: Option<SeqNum>) -> bool {
        match (&self.window, seq) {
            (Some(w), Some(s)) => w.contains(&s.get()),
            _ => true,
        }
    }
}

impl TraceSink for CaptureSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.wants(ev.seq()) {
            self.events.push(ev);
        }
    }

    fn recent(&self) -> Vec<TraceEvent> {
        const TAIL: usize = 4096;
        let start = self.events.len().saturating_sub(TAIL);
        self.events[start..].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::Cycle;

    fn commit(n: u64) -> TraceEvent {
        TraceEvent::Commit {
            cycle: Cycle::new(n),
            seq: SeqNum::new(n),
        }
    }

    #[test]
    fn unwindowed_capture_keeps_everything() {
        let mut c = CaptureSink::new();
        for n in 0..10 {
            c.record(commit(n));
        }
        assert_eq!(c.events().len(), 10);
        assert_eq!(c.recent().len(), 10);
        assert_eq!(c.into_events().len(), 10);
    }

    #[test]
    fn window_filters_by_seq_but_keeps_occupancy() {
        let mut c = CaptureSink::with_window(3..6);
        for n in 0..10 {
            c.record(commit(n));
        }
        c.record(TraceEvent::Occupancy {
            cycle: Cycle::new(99),
            rob: 1,
            iq: 1,
            lq: 0,
            sq: 0,
            recovery: 0,
            inflight: 0,
        });
        let seqs: Vec<_> = c
            .events()
            .iter()
            .filter_map(|e| e.seq().map(|s| s.get()))
            .collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        assert_eq!(c.events().len(), 4, "occupancy sample retained");
    }
}
