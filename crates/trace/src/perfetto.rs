//! Chrome-trace-event (Perfetto) JSON exporter.
//!
//! Produces the legacy Chrome trace-event JSON format, which both
//! `chrome://tracing` and <https://ui.perfetto.dev> open directly:
//!
//! * one thread track per pipeline stage (fetch / rename / issue /
//!   execute / replay / recovery / commit / flush) under a single
//!   "pipeline" process, with each µ-op's visit to a stage as a `"X"`
//!   complete event (1 timestamp unit == 1 simulated cycle);
//! * speculative wakeups and replay squashes as `"i"` instants;
//! * each replay squash linked back to its triggering µ-op with a
//!   `"s"`/`"f"` flow pair, so clicking the late load in the Perfetto UI
//!   draws arrows to every dependent it took down;
//! * per-cycle structure occupancy as a multi-series `"C"` counter
//!   track.
//!
//! Output is deterministic: event order follows the input stream and
//! flow ids are assigned in first-use order.

use ss_types::trace::{class_code, TraceEvent};
use ss_types::{Cycle, SeqNum};
use std::collections::HashMap;
use std::fmt::Write;

/// The single synthetic process id all tracks live under.
const PID: u32 = 1;

/// Stage track ids (Chrome "thread" ids), in pipeline order.
mod tid {
    pub const FETCH: u32 = 1;
    pub const RENAME: u32 = 2;
    pub const ISSUE: u32 = 3;
    pub const EXECUTE: u32 = 4;
    pub const REPLAY: u32 = 5;
    pub const RECOVERY: u32 = 6;
    pub const COMMIT: u32 = 7;
    pub const FLUSH: u32 = 8;
}

const TRACKS: &[(u32, &str)] = &[
    (tid::FETCH, "fetch"),
    (tid::RENAME, "rename"),
    (tid::ISSUE, "issue"),
    (tid::EXECUTE, "execute"),
    (tid::REPLAY, "replay-squash"),
    (tid::RECOVERY, "recovery-buffer"),
    (tid::COMMIT, "commit"),
    (tid::FLUSH, "flush"),
];

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Emitter {
    out: String,
    first: bool,
}

impl Emitter {
    fn new() -> Self {
        Emitter {
            out: String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"),
            first: true,
        }
    }

    fn push(&mut self, body: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push('{');
        self.out.push_str(body);
        self.out.push('}');
    }

    fn span(&mut self, name: &str, ts: Cycle, dur: u64, tid: u32) {
        self.push(&format!(
            "\"ph\":\"X\",\"name\":\"{}\",\"ts\":{},\"dur\":{},\"pid\":{PID},\"tid\":{}",
            esc(name),
            ts.get(),
            dur.max(1),
            tid
        ));
    }

    fn instant(&mut self, name: &str, ts: Cycle, tid: u32) {
        self.push(&format!(
            "\"ph\":\"i\",\"name\":\"{}\",\"ts\":{},\"pid\":{PID},\"tid\":{},\"s\":\"t\"",
            esc(name),
            ts.get(),
            tid
        ));
    }

    fn flow(&mut self, ph: char, name: &str, id: u64, ts: Cycle, tid: u32) {
        let tail = if ph == 'f' { ",\"bp\":\"e\"" } else { "" };
        self.push(&format!(
            "\"ph\":\"{ph}\",\"name\":\"{}\",\"cat\":\"replay\",\"id\":{id},\"ts\":{},\
             \"pid\":{PID},\"tid\":{}{tail}",
            esc(name),
            ts.get(),
            tid
        ));
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

fn uop_name(seq: SeqNum) -> String {
    format!("u{}", seq.get())
}

/// Renders `events` as a Chrome-trace-event JSON document.
///
/// Events may arrive in discovery order (the instrumentation back-dates
/// `Fetch`); the exporter stamps each with its own cycle, which is all
/// the trace viewers need.
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    let mut e = Emitter::new();
    e.push(&format!(
        "\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{PID},\"args\":{{\"name\":\"pipeline\"}}"
    ));
    for &(t, name) in TRACKS {
        e.push(&format!(
            "\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{PID},\"tid\":{t},\
             \"args\":{{\"name\":\"{name}\"}}"
        ));
        // Order tracks by pipeline stage, not alphabetically.
        e.push(&format!(
            "\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":{PID},\"tid\":{t},\
             \"args\":{{\"sort_index\":{t}}}"
        ));
    }

    // One flow id per (trigger, squash-cycle) replay group: a single
    // flow start on the trigger fans out to every squashed dependent.
    let mut flow_ids: HashMap<(u64, u64), u64> = HashMap::new();
    let mut next_flow = 0u64;

    for ev in events {
        match *ev {
            TraceEvent::Fetch {
                cycle,
                seq,
                pc,
                class,
                wrong_path,
            } => {
                let wp = if wrong_path { " wp" } else { "" };
                e.span(
                    &format!(
                        "u{} {} pc={:#x}{wp}",
                        seq.get(),
                        class_code(class),
                        pc.get()
                    ),
                    cycle,
                    1,
                    tid::FETCH,
                );
            }
            TraceEvent::Rename { cycle, seq } => {
                e.span(&uop_name(seq), cycle, 1, tid::RENAME);
            }
            TraceEvent::SpecWakeup { cycle, seq, wake } => {
                e.instant(
                    &format!("u{} spec-wakeup@{}", seq.get(), wake.get()),
                    cycle,
                    tid::ISSUE,
                );
            }
            TraceEvent::Issue {
                cycle,
                seq,
                from_recovery,
            } => {
                let tag = if from_recovery { " (replay)" } else { "" };
                e.span(&format!("u{}{tag}", seq.get()), cycle, 1, tid::ISSUE);
            }
            TraceEvent::Execute {
                cycle,
                seq,
                done_at,
            } => {
                e.span(
                    &uop_name(seq),
                    cycle,
                    done_at.get().saturating_sub(cycle.get()),
                    tid::EXECUTE,
                );
            }
            TraceEvent::ReplaySquash {
                cycle,
                seq,
                trigger,
                cause,
            } => {
                let key = (trigger.get(), cycle.get());
                let new = !flow_ids.contains_key(&key);
                let id = *flow_ids.entry(key).or_insert_with(|| {
                    next_flow += 1;
                    next_flow
                });
                let name = format!("replay {cause}");
                if new {
                    // Flow start rides on the triggering µ-op.
                    e.instant(
                        &format!("u{} triggers {cause} replay", trigger.get()),
                        cycle,
                        tid::EXECUTE,
                    );
                    e.flow('s', &name, id, cycle, tid::EXECUTE);
                }
                e.span(
                    &format!("u{} squashed ({cause} by u{})", seq.get(), trigger.get()),
                    cycle,
                    1,
                    tid::REPLAY,
                );
                e.flow('f', &name, id, cycle, tid::REPLAY);
            }
            TraceEvent::RecoveryEnter { cycle, seq } => {
                e.span(&uop_name(seq), cycle, 1, tid::RECOVERY);
            }
            TraceEvent::Commit { cycle, seq } => {
                e.span(&uop_name(seq), cycle, 1, tid::COMMIT);
            }
            TraceEvent::Flush { cycle, seq } => {
                e.span(&format!("u{} flushed", seq.get()), cycle, 1, tid::FLUSH);
            }
            TraceEvent::Occupancy {
                cycle,
                rob,
                iq,
                lq,
                sq,
                recovery,
                inflight,
            } => {
                e.push(&format!(
                    "\"ph\":\"C\",\"name\":\"occupancy\",\"ts\":{},\"pid\":{PID},\
                     \"args\":{{\"rob\":{rob},\"iq\":{iq},\"lq\":{lq},\"sq\":{sq},\
                     \"recovery\":{recovery},\"inflight\":{inflight}}}",
                    cycle.get()
                ));
            }
        }
    }
    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_chrome_trace;
    use ss_types::{OpClass, Pc, ReplayCause};

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Fetch {
                cycle: Cycle::new(0),
                seq: SeqNum::new(0),
                pc: Pc::new(0x400),
                class: OpClass::Load,
                wrong_path: false,
            },
            TraceEvent::Rename {
                cycle: Cycle::new(4),
                seq: SeqNum::new(0),
            },
            TraceEvent::SpecWakeup {
                cycle: Cycle::new(6),
                seq: SeqNum::new(0),
                wake: Cycle::new(10),
            },
            TraceEvent::Issue {
                cycle: Cycle::new(6),
                seq: SeqNum::new(0),
                from_recovery: false,
            },
            TraceEvent::Execute {
                cycle: Cycle::new(10),
                seq: SeqNum::new(0),
                done_at: Cycle::new(14),
            },
            TraceEvent::ReplaySquash {
                cycle: Cycle::new(10),
                seq: SeqNum::new(1),
                trigger: SeqNum::new(0),
                cause: ReplayCause::L1Miss,
            },
            TraceEvent::ReplaySquash {
                cycle: Cycle::new(10),
                seq: SeqNum::new(2),
                trigger: SeqNum::new(0),
                cause: ReplayCause::L1Miss,
            },
            TraceEvent::RecoveryEnter {
                cycle: Cycle::new(10),
                seq: SeqNum::new(1),
            },
            TraceEvent::Commit {
                cycle: Cycle::new(20),
                seq: SeqNum::new(0),
            },
            TraceEvent::Flush {
                cycle: Cycle::new(22),
                seq: SeqNum::new(5),
            },
            TraceEvent::Occupancy {
                cycle: Cycle::new(23),
                rob: 7,
                iq: 3,
                lq: 1,
                sq: 0,
                recovery: 1,
                inflight: 2,
            },
        ]
    }

    #[test]
    fn export_passes_schema_validation() {
        let doc = export_chrome_trace(&sample());
        let s = validate_chrome_trace(&doc).expect("schema-valid");
        assert!(s.spans >= 7, "{s:?}");
        assert_eq!(s.counters, 1, "{s:?}");
        // One flow start + two flow finishes for the shared trigger.
        assert_eq!(s.flows, 3, "{s:?}");
        assert_eq!(s.metadata, 1 + 2 * TRACKS.len(), "{s:?}");
    }

    #[test]
    fn squash_group_shares_one_flow_id() {
        let doc = export_chrome_trace(&sample());
        assert_eq!(doc.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(doc.matches("\"ph\":\"f\"").count(), 2);
        assert_eq!(doc.matches("\"id\":1,").count(), 3);
    }

    #[test]
    fn export_is_deterministic() {
        let a = export_chrome_trace(&sample());
        let b = export_chrome_trace(&sample());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_still_valid() {
        let doc = export_chrome_trace(&[]);
        let s = validate_chrome_trace(&doc).expect("valid");
        assert_eq!(s.spans, 0);
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
