//! Minimal JSON parser and Chrome-trace-event schema validator.
//!
//! The workspace builds with no external dependencies, so the schema
//! check the tests and CI run against exported Perfetto traces uses this
//! small hand-rolled recursive-descent parser. It supports the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null) and is meant for validating our own exporter's output — it is
//! not tuned for adversarial or multi-gigabyte inputs.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; trace timestamps fit exactly).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs never appear in our own
                            // exporter's output; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }
}

/// Summary of a validated Chrome-trace document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// `"X"` complete (stage span) events.
    pub spans: usize,
    /// `"i"` instant events.
    pub instants: usize,
    /// `"s"` + `"f"` flow events (replay-squash links).
    pub flows: usize,
    /// `"C"` counter samples (occupancy).
    pub counters: usize,
    /// `"M"` metadata records (track names).
    pub metadata: usize,
}

/// Parses `input` and checks it against the Chrome-trace-event schema
/// our exporter emits: a top-level object with a `traceEvents` array
/// whose every element has the fields its phase (`ph`) requires.
///
/// Returns per-phase counts so callers can assert a trace is non-trivial.
pub fn validate_chrome_trace(input: &str) -> Result<ChromeTraceSummary, String> {
    let doc = parse(input).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing top-level `traceEvents`")?
        .as_arr()
        .ok_or("`traceEvents` is not an array")?;
    let mut summary = ChromeTraceSummary::default();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |msg: &str| format!("traceEvents[{i}]: {msg}");
        let obj = ev.as_obj().ok_or_else(|| ctx("not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string `ph`"))?;
        let need_str = |key: &str| -> Result<(), String> {
            obj.get(key)
                .and_then(Json::as_str)
                .map(|_| ())
                .ok_or_else(|| ctx(&format!("ph={ph} missing string `{key}`")))
        };
        let need_num = |key: &str| -> Result<(), String> {
            obj.get(key)
                .and_then(Json::as_num)
                .map(|_| ())
                .ok_or_else(|| ctx(&format!("ph={ph} missing number `{key}`")))
        };
        match ph {
            "X" => {
                need_str("name")?;
                need_num("ts")?;
                need_num("dur")?;
                need_num("pid")?;
                need_num("tid")?;
                summary.spans += 1;
            }
            "i" => {
                need_str("name")?;
                need_num("ts")?;
                need_num("pid")?;
                need_num("tid")?;
                summary.instants += 1;
            }
            "s" | "f" => {
                need_str("name")?;
                need_str("cat")?;
                need_num("id")?;
                need_num("ts")?;
                need_num("pid")?;
                need_num("tid")?;
                summary.flows += 1;
            }
            "C" => {
                need_str("name")?;
                need_num("ts")?;
                need_num("pid")?;
                let args = obj
                    .get("args")
                    .and_then(Json::as_obj)
                    .ok_or_else(|| ctx("ph=C missing object `args`"))?;
                if args.is_empty() {
                    return Err(ctx("ph=C has empty `args`"));
                }
                for (k, v) in args {
                    if v.as_num().is_none() {
                        return Err(ctx(&format!("counter arg `{k}` is not a number")));
                    }
                }
                summary.counters += 1;
            }
            "M" => {
                need_str("name")?;
                need_num("pid")?;
                summary.metadata += 1;
            }
            other => return Err(ctx(&format!("unknown phase `{other}`"))),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(r#"{"a": [1, -2.5, true, null, "x\nA"], "b": {}}"#).expect("parse");
        let a = doc.get("a").and_then(Json::as_arr).expect("a");
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[1].as_num(), Some(-2.5));
        assert_eq!(a[2], Json::Bool(true));
        assert_eq!(a[3], Json::Null);
        assert_eq!(a[4].as_str(), Some("x\nA"));
        assert!(doc.get("b").and_then(Json::as_obj).is_some());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn validator_accepts_minimal_trace() {
        let doc = r#"{"traceEvents": [
            {"ph":"M","name":"thread_name","pid":1,"tid":2,"args":{"name":"issue"}},
            {"ph":"X","name":"u3","ts":10,"dur":1,"pid":1,"tid":2},
            {"ph":"i","name":"squash","ts":11,"pid":1,"tid":2,"s":"t"},
            {"ph":"s","name":"replay","cat":"replay","id":7,"ts":10,"pid":1,"tid":2},
            {"ph":"f","name":"replay","cat":"replay","id":7,"ts":11,"pid":1,"tid":3,"bp":"e"},
            {"ph":"C","name":"occupancy","ts":12,"pid":1,"args":{"rob":5}}
        ]}"#;
        let s = validate_chrome_trace(doc).expect("valid");
        assert_eq!(
            s,
            ChromeTraceSummary {
                spans: 1,
                instants: 1,
                flows: 2,
                counters: 1,
                metadata: 1,
            }
        );
    }

    #[test]
    fn validator_rejects_missing_fields() {
        let missing_dur = r#"{"traceEvents":[{"ph":"X","name":"u","ts":1,"pid":1,"tid":1}]}"#;
        let err = validate_chrome_trace(missing_dur).unwrap_err();
        assert!(err.contains("dur"), "{err}");
        let bad_phase = r#"{"traceEvents":[{"ph":"Q","name":"u"}]}"#;
        assert!(validate_chrome_trace(bad_phase).is_err());
        assert!(validate_chrome_trace(r#"{"foo": 1}"#).is_err());
    }
}
