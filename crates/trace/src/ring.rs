//! Bounded "flight recorder" sink.

use ss_types::trace::{TraceEvent, TraceSink};
use std::collections::VecDeque;

/// Keeps the most recent `capacity` events, dropping the oldest.
///
/// This is the sink fuzzing and the checked runners attach: cheap enough
/// to leave on for long campaigns, and its [`TraceSink::recent`] tail is
/// what lands in `DeadlockReport::trace` / `DivergenceReport::trace`.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Default capacity: enough to cover several hundred cycles of a
    /// wide pipeline around a failure.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Number of events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drains the ring into a Vec, oldest first, leaving it empty.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

impl Default for RingSink {
    fn default() -> Self {
        RingSink::new(Self::DEFAULT_CAPACITY)
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    fn recent(&self) -> Vec<TraceEvent> {
        self.buf.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::{Cycle, SeqNum};

    fn commit(n: u64) -> TraceEvent {
        TraceEvent::Commit {
            cycle: Cycle::new(n),
            seq: SeqNum::new(n),
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = RingSink::new(3);
        assert!(r.is_empty());
        for n in 0..5 {
            r.record(commit(n));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let recent = r.recent();
        assert_eq!(recent, vec![commit(2), commit(3), commit(4)]);
        assert_eq!(r.take(), recent);
        assert!(r.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = RingSink::new(0);
        r.record(commit(1));
        assert_eq!(r.recent(), vec![commit(1)]);
    }

    #[test]
    fn ring_sink_is_enabled() {
        const { assert!(RingSink::ENABLED) };
    }
}
