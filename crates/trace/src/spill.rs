//! Spill-to-disk sink: streams the stable one-line text encoding.

use ss_types::trace::{TraceEvent, TraceSink};
use std::io::{self, BufRead, Write};

/// Streams every event to a writer as one text line per event (the
/// encoding defined by `TraceEvent`'s `Display`/`FromStr`), keeping a
/// small in-memory tail for failure reports.
///
/// Use this for full-run captures too large for a [`CaptureSink`]
/// (hundreds of millions of events); load them back with
/// [`read_spill`].
#[derive(Debug)]
pub struct SpillSink<W: Write> {
    out: W,
    tail: crate::RingSink,
    written: u64,
    error: Option<io::ErrorKind>,
}

impl<W: Write> SpillSink<W> {
    /// Wraps `out` (callers should hand in a `BufWriter` for file
    /// targets).
    pub fn new(out: W) -> Self {
        SpillSink {
            out,
            tail: crate::RingSink::default(),
            written: 0,
            error: None,
        }
    }

    /// Events successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first I/O error encountered, if any. Recording never panics;
    /// a failed write latches here and subsequent events still feed the
    /// in-memory tail.
    pub fn io_error(&self) -> Option<io::ErrorKind> {
        self.error
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for SpillSink<W> {
    fn record(&mut self, ev: TraceEvent) {
        self.tail.record(ev);
        if self.error.is_none() {
            match writeln!(self.out, "{ev}") {
                Ok(()) => self.written += 1,
                Err(e) => self.error = Some(e.kind()),
            }
        }
    }

    fn recent(&self) -> Vec<TraceEvent> {
        self.tail.recent()
    }
}

/// Reads a spill stream back into events, rejecting malformed lines with
/// a line-numbered error. Blank lines are ignored.
pub fn read_spill<R: BufRead>(input: R) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", idx + 1))?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        events.push(
            line.parse::<TraceEvent>()
                .map_err(|e| format!("line {}: {e}", idx + 1))?,
        );
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::{Cycle, ReplayCause, SeqNum};

    #[test]
    fn spill_round_trips_through_reader() {
        let events = vec![
            TraceEvent::Issue {
                cycle: Cycle::new(5),
                seq: SeqNum::new(2),
                from_recovery: false,
            },
            TraceEvent::ReplaySquash {
                cycle: Cycle::new(9),
                seq: SeqNum::new(4),
                trigger: SeqNum::new(2),
                cause: ReplayCause::L1Miss,
            },
        ];
        let mut sink = SpillSink::new(Vec::new());
        for &ev in &events {
            sink.record(ev);
        }
        assert_eq!(sink.written(), 2);
        assert_eq!(sink.recent(), events);
        let bytes = sink.finish().expect("flush");
        let back = read_spill(io::Cursor::new(bytes)).expect("parse");
        assert_eq!(back, events);
    }

    #[test]
    fn reader_reports_line_numbers() {
        let err = read_spill(io::Cursor::new("C c=1 s=1\n\ngarbage\n")).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
    }

    struct FailWriter;
    impl Write for FailWriter {
        fn write(&mut self, _: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("disk full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_failure_latches_but_tail_survives() {
        let mut sink = SpillSink::new(FailWriter);
        let ev = TraceEvent::Commit {
            cycle: Cycle::new(1),
            seq: SeqNum::new(1),
        };
        sink.record(ev);
        sink.record(ev);
        assert_eq!(sink.written(), 0);
        assert!(sink.io_error().is_some());
        assert_eq!(sink.recent().len(), 2);
    }
}
