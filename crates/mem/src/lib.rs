//! Memory-hierarchy substrate for the speculative-scheduling simulator.
//!
//! Implements the paper's Table 1 memory system from scratch:
//!
//! * [`cache`] — generic set-associative LRU caches with time-aware MSHR
//!   files (secondary misses merge into outstanding fills).
//! * [`bank`] — the banked-L1D arbiter: 8 quadword-interleaved banks, two
//!   ports, a Rivers-style single line buffer (two same-set reads share a
//!   cycle), and a Sandy-Bridge-style queue for delayed accesses. This is
//!   the component that produces the paper's `RpldBank` replays.
//! * [`prefetch`] — a degree-8 PC-indexed stride prefetcher filling the
//!   L2.
//! * [`dram`] — a DDR3-1600 bank/row-buffer channel model (min 75-cycle,
//!   ~max 185-cycle reads).
//! * [`hierarchy`] — the assembled [`MemoryHierarchy`] the pipeline calls.
//!
//! # Example
//!
//! ```
//! use ss_mem::{MemLevel, MemoryHierarchy};
//! use ss_types::{Addr, Cycle, Pc, SimConfig};
//!
//! let mut mem = MemoryHierarchy::new(&SimConfig::default());
//! let r = mem.load(Pc::new(0x400000), Addr::new(0x10000), Cycle::new(0), false);
//! assert_eq!(r.level, MemLevel::Dram); // cold caches
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bank;
pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod prefetch;

pub use bank::{BankArbiter, BankGrant};
pub use cache::{Lookup, MshrFile, MshrOutcome, SetAssocCache};
pub use dram::Dram;
pub use hierarchy::{LoadResponse, MemLevel, MemoryHierarchy};
pub use prefetch::StridePrefetcher;
