//! The banked-L1D access arbiter (paper §3.1 "Bank Conflicts" + §4.2).
//!
//! The L1D is organized as 8 quadword-interleaved banks behind 2 read
//! ports. Per cycle the cache services at most two accesses; two accesses
//! may share a cycle iff they target *different banks*, or the *same set
//! of the same bank* (a Rivers-style single line buffer with two read
//! ports). Accesses that lose arbitration wait in an unbounded
//! Sandy-Bridge-style queue buffer; queued accesses have priority over new
//! ones and drain in FIFO order under the same rules.
//!
//! Because queued accesses always have priority, their service cycles can
//! be computed exactly at enqueue time, which is what [`BankArbiter`]
//! does — new arrivals can never delay an already-queued access.

use ss_types::{Addr, BankInterleaving, BankedL1dConfig, Cycle};
use std::collections::VecDeque;

/// Maximum accesses the cache can service per cycle (2 read ports).
const SLOTS_PER_CYCLE: u8 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Target {
    bank: u32,
    set: u64,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    target: Target,
    service: Cycle,
}

/// Outcome of presenting one load to the banked L1D in a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankGrant {
    /// Cycles of delay before the access starts (0 = serviced this cycle).
    pub delay: u64,
}

/// The per-cycle bank/port arbiter.
#[derive(Debug, Clone)]
pub struct BankArbiter {
    cfg: BankedL1dConfig,
    set_shift: u32,
    set_mask: u64,
    /// The cycle `served` refers to.
    cur: Cycle,
    /// Accesses granted in `cur` (from the queue or new arrivals).
    served: Vec<Target>,
    /// Deferred accesses with precomputed service cycles, FIFO.
    queue: VecDeque<Queued>,
    /// Reusable buffer for the targets sharing the tail service cycle:
    /// `request` runs once per load and must not allocate in steady state.
    scratch_same: Vec<Target>,
    /// Total accesses delayed ≥ 1 cycle.
    pub delayed_accesses: u64,
    /// Total cycles of queueing delay.
    pub delay_cycles: u64,
}

impl BankArbiter {
    /// Creates an arbiter for the given banking config and L1D geometry
    /// (line size and set count determine the set index bits).
    pub fn new(cfg: BankedL1dConfig, line_bytes: u64, sets: u64) -> Self {
        BankArbiter {
            cfg,
            set_shift: line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            cur: Cycle::ZERO,
            served: Vec::with_capacity(SLOTS_PER_CYCLE as usize),
            queue: VecDeque::new(),
            scratch_same: Vec::with_capacity(SLOTS_PER_CYCLE as usize),
            delayed_accesses: 0,
            delay_cycles: 0,
        }
    }

    fn target(&self, addr: Addr) -> Target {
        let bank_bits = self.cfg.banks.trailing_zeros();
        let bank = match self.cfg.interleaving {
            // word interleaving: bank from the quadword bits within a line
            BankInterleaving::Word => {
                addr.bits(self.cfg.interleave_bytes.trailing_zeros(), bank_bits) as u32
            }
            // set interleaving: bank from the low set-index bits
            BankInterleaving::Set => addr.bits(self.set_shift, bank_bits) as u32,
        };
        let set = (addr.get() >> self.set_shift) & self.set_mask;
        Target { bank, set }
    }

    /// Whether `t` may share a service cycle with already-granted `others`.
    fn compatible(&self, t: Target, others: &[Target]) -> bool {
        if others.len() >= SLOTS_PER_CYCLE as usize {
            return false;
        }
        others
            .iter()
            .all(|o| o.bank != t.bank || (self.cfg.line_buffer && o.set == t.set))
    }

    /// Advances internal state to `now`, granting queued accesses their
    /// scheduled slots.
    fn advance(&mut self, now: Cycle) {
        if now == self.cur {
            return;
        }
        debug_assert!(now > self.cur, "time must move forward");
        self.cur = now;
        self.served.clear();
        while let Some(q) = self.queue.front() {
            if q.service < now {
                self.queue.pop_front();
            } else if q.service == now {
                self.served.push(q.target);
                self.queue.pop_front();
            } else {
                break;
            }
        }
    }

    /// Presents a load at `now`; returns its bank-queueing delay.
    ///
    /// Accesses must be presented in non-decreasing cycle order.
    pub fn request(&mut self, addr: Addr, now: Cycle) -> BankGrant {
        self.advance(now);
        let t = self.target(addr);
        // Serviced now only if no older access is still queued (FIFO
        // priority) and the slot/bank rules allow it.
        if self.queue.is_empty() && self.compatible(t, &self.served) {
            self.served.push(t);
            return BankGrant { delay: 0 };
        }
        // Enqueue: schedule after the current queue tail.
        let mut in_cycle = std::mem::take(&mut self.scratch_same);
        in_cycle.clear();
        let mut cycle = match self.queue.back() {
            Some(tail) => tail.service,
            None => now + 1,
        };
        if cycle <= now {
            // tail was scheduled in the past relative to `now` (can happen
            // only transiently); start fresh next cycle
            cycle = now + 1;
        } else {
            in_cycle.extend(
                self.queue
                    .iter()
                    .filter(|q| q.service == cycle)
                    .map(|q| q.target),
            );
        }
        if !self.compatible(t, &in_cycle) {
            cycle += 1;
        }
        self.scratch_same = in_cycle;
        let delay = cycle - now;
        self.queue.push_back(Queued {
            target: t,
            service: cycle,
        });
        self.delayed_accesses += 1;
        self.delay_cycles += delay;
        BankGrant { delay }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arb(line_buffer: bool) -> BankArbiter {
        BankArbiter::new(
            BankedL1dConfig {
                line_buffer,
                ..Default::default()
            },
            64,
            64,
        )
    }

    /// addr with a given bank (0-7) and set (0-63)
    fn a(bank: u64, set: u64) -> Addr {
        Addr::new(set * 64 + bank * 8)
    }

    #[test]
    fn different_banks_share_a_cycle() {
        let mut b = arb(true);
        assert_eq!(b.request(a(0, 0), Cycle::new(1)).delay, 0);
        assert_eq!(b.request(a(1, 0), Cycle::new(1)).delay, 0);
    }

    #[test]
    fn same_bank_different_set_conflicts() {
        let mut b = arb(true);
        assert_eq!(b.request(a(3, 0), Cycle::new(1)).delay, 0);
        assert_eq!(b.request(a(3, 5), Cycle::new(1)).delay, 1);
        assert_eq!(b.delayed_accesses, 1);
    }

    #[test]
    fn same_bank_same_set_uses_line_buffer() {
        let mut b = arb(true);
        assert_eq!(b.request(a(3, 7), Cycle::new(1)).delay, 0);
        assert_eq!(
            b.request(a(3, 7), Cycle::new(1)).delay,
            0,
            "line buffer: 2 reads of one set"
        );
    }

    #[test]
    fn same_bank_same_set_conflicts_without_line_buffer() {
        let mut b = arb(false);
        assert_eq!(b.request(a(3, 7), Cycle::new(1)).delay, 0);
        assert_eq!(b.request(a(3, 7), Cycle::new(1)).delay, 1);
    }

    #[test]
    fn at_most_two_accesses_per_cycle() {
        let mut b = arb(true);
        assert_eq!(b.request(a(0, 0), Cycle::new(1)).delay, 0);
        assert_eq!(b.request(a(1, 0), Cycle::new(1)).delay, 0);
        // third access, even to a free bank, must wait (2 ports)
        assert_eq!(b.request(a(2, 0), Cycle::new(1)).delay, 1);
    }

    /// The paper's worked example (§3.1): two loads conflict in cycle 0;
    /// the loser is queued. In cycle 1, two new loads conflict with the
    /// queued one: the queued load and one new load are serviced; the
    /// other new load waits until cycle 3... here exactly: queued has
    /// priority, new compatible arrivals fill the second slot.
    #[test]
    fn queued_loads_have_priority_over_new_ones() {
        let mut b = arb(true);
        // cycle 0: L0a and L0b conflict (bank 2, sets 0/1)
        assert_eq!(b.request(a(2, 0), Cycle::new(0)).delay, 0);
        assert_eq!(b.request(a(2, 1), Cycle::new(0)).delay, 1); // queued for cycle 1
                                                                // cycle 1: two new loads to bank 2 (sets 2, 3): both conflict with
                                                                // the queued load being serviced this cycle
        assert_eq!(b.request(a(2, 2), Cycle::new(1)).delay, 1); // cycle 2
        assert_eq!(b.request(a(2, 3), Cycle::new(1)).delay, 2); // cycle 3
    }

    #[test]
    fn new_load_fills_free_slot_next_to_queued_one() {
        let mut b = arb(true);
        b.request(a(2, 0), Cycle::new(0));
        assert_eq!(b.request(a(2, 1), Cycle::new(0)).delay, 1); // queued → cycle 1
                                                                // cycle 1: a load to a different bank coexists with the queued one
        assert_eq!(b.request(a(5, 0), Cycle::new(1)).delay, 0);
        // but a third access in cycle 1 is out of slots
        assert_eq!(b.request(a(6, 0), Cycle::new(1)).delay, 1);
    }

    #[test]
    fn queue_drains_two_per_cycle_when_banks_differ() {
        let mut b = arb(true);
        // fill cycle 0 with two grants
        b.request(a(0, 0), Cycle::new(0));
        b.request(a(1, 0), Cycle::new(0));
        // four more to distinct banks: queue two per cycle
        assert_eq!(b.request(a(2, 0), Cycle::new(0)).delay, 1);
        assert_eq!(b.request(a(3, 0), Cycle::new(0)).delay, 1);
        assert_eq!(b.request(a(4, 0), Cycle::new(0)).delay, 2);
        assert_eq!(b.request(a(5, 0), Cycle::new(0)).delay, 2);
    }

    #[test]
    fn far_future_request_resets_state() {
        let mut b = arb(true);
        b.request(a(0, 0), Cycle::new(0));
        b.request(a(0, 1), Cycle::new(0));
        // much later, the queue has long drained
        assert_eq!(b.request(a(0, 2), Cycle::new(100)).delay, 0);
    }

    #[test]
    fn set_interleaving_banks_on_set_bits() {
        use ss_types::BankInterleaving;
        let mut b = BankArbiter::new(
            BankedL1dConfig {
                interleaving: BankInterleaving::Set,
                ..Default::default()
            },
            64,
            64,
        );
        // same line, different quadwords: same bank AND same set → line buffer
        assert_eq!(b.request(Addr::new(0), Cycle::new(1)).delay, 0);
        assert_eq!(b.request(Addr::new(8), Cycle::new(1)).delay, 0);
        // sets 0 and 8 → banks 0 and 0 (8 % 8): conflict, different sets
        assert_eq!(b.request(Addr::new(8 * 64), Cycle::new(2)).delay, 0);
        assert_eq!(b.request(Addr::new(16 * 64), Cycle::new(2)).delay, 1);
        // sets 0 and 1 → different banks: no conflict
        assert_eq!(b.request(Addr::new(0), Cycle::new(10)).delay, 0);
        assert_eq!(b.request(Addr::new(64), Cycle::new(10)).delay, 0);
    }

    #[test]
    fn delay_stats_accumulate() {
        let mut b = arb(true);
        b.request(a(0, 0), Cycle::new(0));
        b.request(a(0, 1), Cycle::new(0));
        b.request(a(0, 2), Cycle::new(0));
        assert_eq!(b.delayed_accesses, 2);
        assert_eq!(b.delay_cycles, 1 + 2);
    }
}

ss_types::impl_persist!(Target { bank, set });
ss_types::impl_persist!(Queued { target, service });
ss_types::impl_persist_state!(BankArbiter {
    cur,
    served,
    queue,
    delayed_accesses,
    delay_cycles
});
