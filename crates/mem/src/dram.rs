//! A DDR3-1600-style main-memory timing model (Table 1): single channel,
//! 2 ranks × 8 banks, 8 KB row buffers, 8B data bus. Read latency spans
//! the paper's 75-cycle minimum (idle bank, open row) to ~185 cycles
//! (row conflict plus bus/bank queueing).

use ss_types::{Addr, Cycle, DramConfig};

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Cycle,
}

/// The DRAM channel model.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    /// Data-bus free time (single shared bus).
    bus_free: Cycle,
    /// Row-buffer hit counter.
    pub row_hits: u64,
    /// Row-buffer miss/conflict counter.
    pub row_misses: u64,
}

impl Dram {
    /// Creates the channel from its timing config.
    pub fn new(cfg: DramConfig) -> Self {
        let n = (cfg.ranks * cfg.banks_per_rank) as usize;
        Dram {
            cfg,
            banks: vec![Bank::default(); n],
            bus_free: Cycle::ZERO,
            row_hits: 0,
            row_misses: 0,
        }
    }

    fn map(&self, addr: Addr) -> (usize, u64) {
        // Row-interleaved mapping: consecutive rows rotate across banks,
        // so streaming accesses spread over banks while each row captures
        // spatial locality.
        let row_global = addr.get() / self.cfg.row_bytes;
        let nbanks = self.banks.len() as u64;
        ((row_global % nbanks) as usize, row_global / nbanks)
    }

    /// Issues a read for the line containing `addr` at `now`; returns the
    /// total latency in cycles until the line is delivered.
    pub fn read(&mut self, addr: Addr, now: Cycle) -> u64 {
        let (bank_idx, row) = self.map(addr);
        let bank = &mut self.banks[bank_idx];

        // Wait for the bank and the shared bus.
        let start = now
            .get()
            .max(bank.busy_until.get())
            .max(self.bus_free.get());
        let mut latency = start - now.get();

        let (base, occupancy) = match bank.open_row {
            Some(open) if open == row => {
                self.row_hits += 1;
                // Row hit: the bank is only occupied for the burst, so
                // open-row streaming is bus-limited, not latency-limited.
                (self.cfg.row_hit_cycles, self.cfg.bus_cycles_per_line)
            }
            Some(_) => {
                self.row_misses += 1;
                (
                    self.cfg.row_hit_cycles + self.cfg.row_conflict_extra_cycles,
                    self.cfg.row_conflict_extra_cycles + self.cfg.bus_cycles_per_line,
                )
            }
            None => {
                self.row_misses += 1;
                (
                    self.cfg.row_hit_cycles + self.cfg.row_miss_extra_cycles,
                    self.cfg.row_miss_extra_cycles + self.cfg.bus_cycles_per_line,
                )
            }
        };
        latency += base;
        bank.open_row = Some(row);
        bank.busy_until = Cycle::new(start) + occupancy;
        self.bus_free = Cycle::new(start) + self.cfg.bus_cycles_per_line;
        latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn first_access_pays_row_activation() {
        let mut d = dram();
        let lat = d.read(Addr::new(0x10000), Cycle::new(0));
        assert_eq!(lat, 75 + 55, "cold bank: activate + read");
        assert_eq!(d.row_misses, 1);
    }

    #[test]
    fn open_row_hit_is_minimum_latency() {
        let mut d = dram();
        let _ = d.read(Addr::new(0x10000), Cycle::new(0));
        // same row, later (bank and bus idle again)
        let lat = d.read(Addr::new(0x10040), Cycle::new(1000));
        assert_eq!(
            lat, 75,
            "row-buffer hit is the paper's minimum read latency"
        );
        assert_eq!(d.row_hits, 1);
    }

    #[test]
    fn row_conflict_costs_more() {
        let mut d = dram();
        let row_bytes = DramConfig::default().row_bytes;
        let nbanks = 16;
        let a = Addr::new(0);
        let b = Addr::new(row_bytes * nbanks); // same bank, different row
        let _ = d.read(a, Cycle::new(0));
        let lat = d.read(b, Cycle::new(1000));
        assert_eq!(
            lat, 185,
            "isolated row conflict = the paper's max read latency"
        );
    }

    #[test]
    fn back_to_back_same_bank_queues() {
        let mut d = dram();
        let _ = d.read(Addr::new(0), Cycle::new(0)); // occupies bank+bus
        let lat = d.read(Addr::new(64), Cycle::new(1)); // same row, bank busy
        assert!(lat > 75, "bank/bus queueing must add latency, got {lat}");
        assert!(
            lat <= 75 + 55 + 20,
            "bounded by occupancy + row hit, got {lat}"
        );
    }

    #[test]
    fn open_row_streaming_is_bus_limited() {
        // Consecutive row hits should stream at ~bus_cycles_per_line, not
        // serialize at the full read latency.
        let mut d = dram();
        let _ = d.read(Addr::new(0), Cycle::new(0)); // activate
        let mut worst = 0;
        for i in 1..20u64 {
            worst = worst.max(d.read(Addr::new(i * 64), Cycle::new(1000 + i * 20)));
        }
        assert!(
            worst <= 75 + 20,
            "streaming latency must stay near row-hit, got {worst}"
        );
    }

    #[test]
    fn isolated_latencies_span_paper_range() {
        // Unloaded latencies must span the paper's [75, 185] read range.
        let mut d = dram();
        let row_bytes = DramConfig::default().row_bytes;
        let cold = d.read(Addr::new(0), Cycle::new(0));
        let hit = d.read(Addr::new(64), Cycle::new(1000));
        let conflict = d.read(Addr::new(row_bytes * 16), Cycle::new(2000));
        assert_eq!(hit, 75);
        assert_eq!(conflict, 185);
        assert!(cold > hit && cold < conflict);
    }

    #[test]
    fn same_bank_burst_serializes() {
        // Back-to-back conflicting reads queue behind the busy bank; the
        // k-th access waits roughly k full conflict latencies.
        let mut d = dram();
        let row_bytes = DramConfig::default().row_bytes;
        let mut last = 0;
        for i in 0..4u64 {
            let addr = Addr::new(i * row_bytes * 16); // same bank, diff rows
            last = d.read(addr, Cycle::new(i));
        }
        assert!(last > 3 * 130, "burst must serialize, got {last}");
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = dram();
        let _ = d.read(Addr::new(0), Cycle::new(0));
        // next row maps to the next bank; only the shared bus serializes
        let lat = d.read(Addr::new(8192), Cycle::new(0));
        assert!(
            lat < 75 + 55 + 55,
            "bank-parallel access must not serialize fully: {lat}"
        );
    }

    #[test]
    fn streaming_rows_rotate_banks() {
        let d = dram();
        let (b0, _) = d.map(Addr::new(0));
        let (b1, _) = d.map(Addr::new(8192));
        assert_ne!(b0, b1);
    }
}

ss_types::impl_persist!(Bank {
    open_row,
    busy_until
});
ss_types::impl_persist_state!(Dram {
    banks,
    bus_free,
    row_hits,
    row_misses
});
