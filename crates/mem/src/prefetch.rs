//! A PC-indexed stride prefetcher, degree 8, sitting at the L2 (Table 1).
//!
//! It observes the demand-miss stream (L1D misses), detects per-PC
//! constant strides with a small confidence counter, and, once confident,
//! emits prefetch requests for the next `degree` lines. Fills go into the
//! L2 only — the L1 still misses on first touch, which is exactly why the
//! paper's streaming benchmarks keep replaying under the Always-Hit policy
//! while their *performance* stays acceptable.

use ss_types::{Addr, Pc};

/// Entries in the stride table.
const TABLE_ENTRIES: usize = 256;
/// Confidence needed before prefetches are emitted.
const CONFIDENT: u8 = 2;

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    tag: u32,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// The stride prefetcher.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    degree: u32,
    line_bytes: u64,
    /// Reusable burst buffer handed out by reference: `observe_miss` is
    /// on the per-L1-miss hot path and must not allocate in steady state.
    burst: Vec<Addr>,
    /// Prefetch requests emitted.
    pub issued: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher of the given degree (0 disables it).
    pub fn new(degree: u32, line_bytes: u64) -> Self {
        StridePrefetcher {
            table: vec![StrideEntry::default(); TABLE_ENTRIES],
            degree,
            line_bytes,
            burst: Vec::with_capacity(degree as usize),
            issued: 0,
        }
    }

    /// Observes a demand L1 miss by the load at `pc` to `addr`; returns
    /// the line addresses to prefetch (empty while training or disabled).
    /// The slice borrows an internal buffer valid until the next call.
    pub fn observe_miss(&mut self, pc: Pc, addr: Addr) -> &[Addr] {
        self.burst.clear();
        if self.degree == 0 {
            return &self.burst;
        }
        let idx = (pc.get() >> 2) as usize % TABLE_ENTRIES;
        let tag = (pc.get() >> 2) as u32;
        let e = &mut self.table[idx];
        if e.tag != tag {
            *e = StrideEntry {
                tag,
                last_addr: addr.get(),
                stride: 0,
                confidence: 0,
            };
            return &self.burst;
        }
        let new_stride = addr.get() as i64 - e.last_addr as i64;
        if new_stride == e.stride && new_stride != 0 {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.confidence = e.confidence.saturating_sub(1);
            e.stride = new_stride;
        }
        e.last_addr = addr.get();
        if e.confidence >= CONFIDENT {
            // Prefetch the next `degree` *lines* along the stride.
            let stride_lines = if e.stride.unsigned_abs() < self.line_bytes {
                self.line_bytes as i64 * e.stride.signum()
            } else {
                e.stride
            };
            for k in 1..=self.degree as i64 {
                let target = addr.get() as i64 + stride_lines * k;
                if target >= 0 {
                    self.burst
                        .push(Addr::new(target as u64).line(self.line_bytes));
                }
            }
            self.issued += self.burst.len() as u64;
        }
        &self.burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StridePrefetcher {
        StridePrefetcher::new(8, 64)
    }

    #[test]
    fn trains_then_prefetches_degree_lines() {
        let mut p = pf();
        let pc = Pc::new(0x400);
        assert!(
            p.observe_miss(pc, Addr::new(0)).is_empty(),
            "first touch: allocate"
        );
        assert!(
            p.observe_miss(pc, Addr::new(64)).is_empty(),
            "stride learned, conf 1"
        );
        assert!(
            p.observe_miss(pc, Addr::new(128)).is_empty(),
            "conf 2? needs repeat"
        );
        let out = p.observe_miss(pc, Addr::new(192));
        assert_eq!(out.len(), 8, "confident: degree-8 burst");
        assert_eq!(out[0], Addr::new(256));
        assert_eq!(out[7], Addr::new(64 * 11));
    }

    #[test]
    fn sub_line_strides_prefetch_whole_lines() {
        let mut p = pf();
        let pc = Pc::new(0x404);
        for i in 0..4u64 {
            let _ = p.observe_miss(pc, Addr::new(i * 8));
        }
        let out = p.observe_miss(pc, Addr::new(32));
        assert!(!out.is_empty());
        assert_eq!(
            out[0],
            Addr::new(64),
            "sub-line stride promoted to line stride"
        );
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = pf();
        let pc = Pc::new(0x408);
        for i in (4..8u64).rev() {
            let _ = p.observe_miss(pc, Addr::new(i * 64 + 4096));
        }
        let out = p.observe_miss(pc, Addr::new(3 * 64 + 4096));
        assert!(!out.is_empty());
        assert_eq!(out[0], Addr::new(2 * 64 + 4096));
    }

    #[test]
    fn random_pattern_never_confident() {
        let mut p = pf();
        let pc = Pc::new(0x40C);
        let addrs = [0u64, 9000, 130, 77777, 42, 55555, 900, 123456];
        let mut total = 0;
        for &a in &addrs {
            total += p.observe_miss(pc, Addr::new(a)).len();
        }
        assert_eq!(total, 0, "no prefetches for a random stream");
    }

    #[test]
    fn degree_zero_is_disabled() {
        let mut p = StridePrefetcher::new(0, 64);
        let pc = Pc::new(0x410);
        for i in 0..10u64 {
            assert!(p.observe_miss(pc, Addr::new(i * 64)).is_empty());
        }
        assert_eq!(p.issued, 0);
    }

    #[test]
    fn distinct_pcs_track_independently() {
        let mut p = pf();
        for i in 0..4u64 {
            let _ = p.observe_miss(Pc::new(0x500), Addr::new(i * 64));
            let _ = p.observe_miss(Pc::new(0x504), Addr::new(1 << 20 | (i * 128)));
        }
        let o1 = p.observe_miss(Pc::new(0x500), Addr::new(4 * 64))[0];
        assert_eq!(o1, Addr::new(5 * 64));
        let o2 = p.observe_miss(Pc::new(0x504), Addr::new(1 << 20 | (4 * 128)))[0];
        assert_eq!(o2, Addr::new(1 << 20 | (4 * 128 + 128)));
    }
}

ss_types::impl_persist!(StrideEntry {
    tag,
    last_addr,
    stride,
    confidence
});
ss_types::impl_persist_state!(StridePrefetcher { table, issued });
