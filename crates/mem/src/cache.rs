//! A generic set-associative cache with true-LRU replacement and an MSHR
//! file for outstanding misses.
//!
//! The cache is *time-aware*: misses are registered in the MSHR file with
//! a completion cycle, and the line is only visible to lookups once its
//! fill completes. Accesses to a line with an outstanding fill *merge*
//! into the MSHR (secondary misses) instead of generating new traffic.

use ss_types::{Addr, CacheGeometry, Cycle};

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    /// Larger = more recently used.
    lru: u64,
    /// Brought in by the prefetcher and not yet demand-hit.
    prefetched: bool,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line is present.
    Hit {
        /// The hit consumed a prefetched line (first demand touch).
        was_prefetch: bool,
    },
    /// The line is absent.
    Miss,
}

/// A set-associative, true-LRU, write-allocate cache (timing only — no
/// data).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<Line>>,
    line_bytes: u64,
    set_mask: u64,
    set_shift: u32,
    lru_clock: u64,
}

impl SetAssocCache {
    /// Builds a cache from its geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.sets();
        SetAssocCache {
            sets: vec![vec![Line::default(); geom.ways as usize]; sets as usize],
            line_bytes: geom.line_bytes,
            set_mask: sets - 1,
            set_shift: geom.line_bytes.trailing_zeros(),
            lru_clock: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    fn set_and_tag(&self, addr: Addr) -> (usize, u64) {
        let line = addr.get() >> self.set_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Looks up `addr`, updating LRU on a hit.
    pub fn lookup(&mut self, addr: Addr) -> Lookup {
        let (set, tag) = self.set_and_tag(addr);
        self.lru_clock += 1;
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.lru = self.lru_clock;
                let was_prefetch = line.prefetched;
                line.prefetched = false;
                return Lookup::Hit { was_prefetch };
            }
        }
        Lookup::Miss
    }

    /// Probes without disturbing LRU or prefetch bits (wrong-path loads).
    pub fn probe(&self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Installs the line containing `addr`, evicting LRU if needed.
    pub fn fill(&mut self, addr: Addr, prefetched: bool) {
        let (set, tag) = self.set_and_tag(addr);
        self.lru_clock += 1;
        // already present (e.g. demand fill racing a prefetch): refresh
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.lru_clock;
            line.prefetched &= prefetched;
            return;
        }
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("non-zero associativity");
        *victim = Line {
            valid: true,
            tag,
            lru: self.lru_clock,
            prefetched,
        };
    }
}

/// One outstanding miss.
#[derive(Debug, Clone, Copy)]
struct Mshr {
    line: u64,
    complete: Cycle,
    prefetch: bool,
}

/// The MSHR file: outstanding line fills with completion times.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Mshr>,
    capacity: usize,
    line_bytes: u64,
}

/// Result of consulting the MSHR file on a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A fill for this line is already in flight, completing at the given
    /// cycle (secondary miss / merge).
    Merged(Cycle),
    /// A new entry was allocated.
    Allocated,
    /// The file is full; the earliest entry completes at the given cycle.
    Full(Cycle),
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries for `line_bytes`
    /// lines.
    pub fn new(capacity: u32, line_bytes: u64) -> Self {
        MshrFile {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            line_bytes,
        }
    }

    fn line(&self, addr: Addr) -> u64 {
        addr.get() / self.line_bytes
    }

    /// Retires entries whose fills completed by `now`, invoking `on_fill`
    /// (typically [`SetAssocCache::fill`]) for each.
    pub fn drain(&mut self, now: Cycle, mut on_fill: impl FnMut(Addr, bool)) {
        let line_bytes = self.line_bytes;
        self.entries.retain(|e| {
            if e.complete <= now {
                on_fill(Addr::new(e.line * line_bytes), e.prefetch);
                false
            } else {
                true
            }
        });
    }

    /// Looks up or allocates an entry for the line containing `addr`,
    /// which will complete at `complete` if newly allocated.
    pub fn access(&mut self, addr: Addr, complete: Cycle, prefetch: bool) -> MshrOutcome {
        let line = self.line(addr);
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            // a demand access upgrades a prefetch entry
            e.prefetch &= prefetch;
            return MshrOutcome::Merged(e.complete);
        }
        if self.entries.len() >= self.capacity {
            let earliest = self
                .entries
                .iter()
                .map(|e| e.complete)
                .min()
                .expect("non-empty");
            return MshrOutcome::Full(earliest);
        }
        self.entries.push(Mshr {
            line,
            complete,
            prefetch,
        });
        MshrOutcome::Allocated
    }

    /// Rewrites the completion cycle of the outstanding entry covering
    /// `addr`. Used by the hierarchy, which allocates an entry first (to
    /// reserve the slot) and learns the real completion time after probing
    /// the next level.
    ///
    /// # Panics
    ///
    /// Panics if no entry covers `addr`.
    pub fn set_completion(&mut self, addr: Addr, complete: Cycle) {
        let line = self.line(addr);
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.line == line)
            .expect("set_completion on a missing MSHR entry");
        e.complete = complete;
    }

    /// Whether a fill for this line is outstanding.
    pub fn contains(&self, addr: Addr) -> bool {
        let line = self.line(addr);
        self.entries.iter().any(|e| e.line == line)
    }

    /// Number of outstanding entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no fills are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        // 4 sets x 2 ways x 64B = 512B
        SetAssocCache::new(CacheGeometry {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = small_cache();
        let a = Addr::new(0x1000);
        assert_eq!(c.lookup(a), Lookup::Miss);
        c.fill(a, false);
        assert_eq!(
            c.lookup(a),
            Lookup::Hit {
                was_prefetch: false
            }
        );
        // same line, different offset
        assert_eq!(
            c.lookup(Addr::new(0x103F)),
            Lookup::Hit {
                was_prefetch: false
            }
        );
        // next line misses
        assert_eq!(c.lookup(Addr::new(0x1040)), Lookup::Miss);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small_cache();
        // set stride = 4 sets * 64B = 256B; three lines in set 0
        let a = Addr::new(0);
        let b = Addr::new(256);
        let d = Addr::new(512);
        c.fill(a, false);
        c.fill(b, false);
        assert_eq!(
            c.lookup(a),
            Lookup::Hit {
                was_prefetch: false
            }
        ); // a now MRU
        c.fill(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn probe_does_not_touch_lru() {
        let mut c = small_cache();
        let a = Addr::new(0);
        let b = Addr::new(256);
        c.fill(a, false);
        c.fill(b, false); // b is MRU, a is LRU
        assert!(c.probe(a)); // must not promote a
        c.fill(Addr::new(512), false); // evicts a (still LRU)
        assert!(!c.probe(a));
        assert!(c.probe(b));
    }

    #[test]
    fn prefetched_flag_reported_once() {
        let mut c = small_cache();
        let a = Addr::new(0x40);
        c.fill(a, true);
        assert_eq!(c.lookup(a), Lookup::Hit { was_prefetch: true });
        assert_eq!(
            c.lookup(a),
            Lookup::Hit {
                was_prefetch: false
            }
        );
    }

    #[test]
    fn refill_of_present_line_keeps_it() {
        let mut c = small_cache();
        let a = Addr::new(0x40);
        c.fill(a, false);
        c.fill(a, true); // prefetch fill of a present demand line
        assert_eq!(
            c.lookup(a),
            Lookup::Hit {
                was_prefetch: false
            }
        );
    }

    #[test]
    fn mshr_merge_and_drain() {
        let mut m = MshrFile::new(4, 64);
        let a = Addr::new(0x1000);
        assert_eq!(m.access(a, Cycle::new(100), false), MshrOutcome::Allocated);
        assert_eq!(
            m.access(a, Cycle::new(200), false),
            MshrOutcome::Merged(Cycle::new(100))
        );
        assert_eq!(
            m.access(Addr::new(0x1010), Cycle::new(150), false),
            MshrOutcome::Merged(Cycle::new(100))
        );
        assert_eq!(m.len(), 1);
        let mut fills = Vec::new();
        m.drain(Cycle::new(99), |a, _| fills.push(a));
        assert!(fills.is_empty(), "not complete yet");
        m.drain(Cycle::new(100), |a, _| fills.push(a));
        assert_eq!(fills, vec![Addr::new(0x1000)]);
        assert!(m.is_empty());
    }

    #[test]
    fn mshr_full_reports_earliest_completion() {
        let mut m = MshrFile::new(2, 64);
        assert_eq!(
            m.access(Addr::new(0), Cycle::new(50), false),
            MshrOutcome::Allocated
        );
        assert_eq!(
            m.access(Addr::new(64), Cycle::new(30), false),
            MshrOutcome::Allocated
        );
        assert_eq!(
            m.access(Addr::new(128), Cycle::new(99), false),
            MshrOutcome::Full(Cycle::new(30))
        );
    }

    #[test]
    fn demand_upgrades_prefetch_mshr() {
        let mut m = MshrFile::new(2, 64);
        m.access(Addr::new(0), Cycle::new(10), true);
        m.access(Addr::new(0), Cycle::new(10), false); // demand merge
        let mut prefetch_flags = Vec::new();
        m.drain(Cycle::new(10), |_, p| prefetch_flags.push(p));
        assert_eq!(
            prefetch_flags,
            vec![false],
            "fill must count as demand-requested"
        );
    }
}

ss_types::impl_persist!(Line {
    valid,
    tag,
    lru,
    prefetched
});
ss_types::impl_persist_state!(SetAssocCache { sets, lru_clock });
ss_types::impl_persist!(Mshr {
    line,
    complete,
    prefetch
});
ss_types::impl_persist_state!(MshrFile { entries });
