//! The assembled memory hierarchy: banked L1D + MSHRs, L2 with stride
//! prefetcher, and the DRAM channel, behind the single entry point the
//! pipeline calls when a load begins its access.

use crate::bank::BankArbiter;
use crate::cache::{Lookup, MshrFile, MshrOutcome, SetAssocCache};
use crate::dram::Dram;
use crate::prefetch::StridePrefetcher;
use ss_types::{Addr, CacheStats, Cycle, Pc, SimConfig, SimStats};

/// The level that serviced a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLevel {
    /// L1D hit.
    L1,
    /// L1D miss, L2 hit (or merge into an L2-bound fill).
    L2,
    /// Missed to DRAM.
    Dram,
}

/// The timing outcome of one load access.
#[derive(Debug, Clone, Copy)]
pub struct LoadResponse {
    /// Deepest level the access had to reach.
    pub level: MemLevel,
    /// Cycles spent queued for an L1D bank (0 with a dual-ported L1D).
    pub bank_delay: u64,
    /// Total extra cycles beyond the base load-to-use latency, *including*
    /// `bank_delay`. A clean L1 hit has `extra_latency == 0`.
    pub extra_latency: u64,
    /// The miss merged into an already-outstanding fill.
    pub merged: bool,
}

impl LoadResponse {
    /// Whether the access hit the L1D (a bank-delayed hit is still a hit).
    pub fn l1_hit(&self) -> bool {
        self.level == MemLevel::L1
    }
}

/// The full data-side memory hierarchy plus the instruction cache.
#[derive(Debug)]
pub struct MemoryHierarchy {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l1d_mshr: MshrFile,
    bank: Option<BankArbiter>,
    l2: SetAssocCache,
    l2_mshr: MshrFile,
    prefetcher: StridePrefetcher,
    /// Scratch copy of the prefetcher's burst (the borrow must end
    /// before the prefetches are issued back into `self`); reused so
    /// the per-miss path stays allocation-free.
    pf_scratch: Vec<Addr>,
    dram: Dram,
    l2_latency: u64,
    /// Demand-load statistics for the L1D.
    pub l1d_stats: CacheStats,
    /// Demand statistics for the L2 (loads that missed the L1D).
    pub l2_stats: CacheStats,
    /// Committed-store accesses (tracked separately from demand loads).
    pub store_accesses: u64,
    /// Committed stores that missed the L1D.
    pub store_misses: u64,
    /// L1I fetch misses.
    pub l1i_misses: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from the machine configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        let bank = cfg
            .l1d_banking
            .map(|b| BankArbiter::new(b, cfg.l1d.line_bytes, cfg.l1d.sets()));
        MemoryHierarchy {
            l1i: SetAssocCache::new(cfg.l1i),
            l1d: SetAssocCache::new(cfg.l1d),
            l1d_mshr: MshrFile::new(cfg.l1d_mshrs, cfg.l1d.line_bytes),
            bank,
            l2: SetAssocCache::new(cfg.l2),
            l2_mshr: MshrFile::new(cfg.l2_mshrs, cfg.l2.line_bytes),
            prefetcher: StridePrefetcher::new(cfg.prefetch_degree, cfg.l2.line_bytes),
            pf_scratch: Vec::with_capacity(cfg.prefetch_degree as usize),
            dram: Dram::new(cfg.dram),
            l2_latency: cfg.l2_latency,
            l1d_stats: CacheStats::default(),
            l2_stats: CacheStats::default(),
            store_accesses: 0,
            store_misses: 0,
            l1i_misses: 0,
        }
    }

    fn drain_fills(&mut self, now: Cycle) {
        let l2 = &mut self.l2;
        self.l2_mshr.drain(now, |a, p| l2.fill(a, p));
        let l1d = &mut self.l1d;
        self.l1d_mshr.drain(now, |a, p| l1d.fill(a, p));
    }

    /// Performs the timing access for a load beginning its L1D access at
    /// `now`. Wrong-path loads (`wrong_path = true`) contend for banks but
    /// probe the caches without mutating any state — they must not train
    /// the prefetcher, allocate MSHRs, or touch LRU/DRAM.
    pub fn load(&mut self, pc: Pc, addr: Addr, now: Cycle, wrong_path: bool) -> LoadResponse {
        self.drain_fills(now);
        let bank_delay = match &mut self.bank {
            Some(b) => b.request(addr, now).delay,
            None => 0,
        };
        let start = now + bank_delay;

        if wrong_path {
            // Probe-only path: realistic latency, no state updates.
            let (level, residual) = if self.l1d.probe(addr) || self.l1d_mshr.contains(addr) {
                (MemLevel::L1, 0)
            } else if self.l2.probe(addr) || self.l2_mshr.contains(addr) {
                (MemLevel::L2, self.l2_latency)
            } else {
                (MemLevel::Dram, self.l2_latency + 75)
            };
            return LoadResponse {
                level,
                bank_delay,
                extra_latency: bank_delay + residual,
                merged: false,
            };
        }

        self.l1d_stats.accesses += 1;
        if let Lookup::Hit { was_prefetch } = self.l1d.lookup(addr) {
            self.l1d_stats.hits += 1;
            if was_prefetch {
                self.l1d_stats.prefetch_hits += 1;
            }
            return LoadResponse {
                level: MemLevel::L1,
                bank_delay,
                extra_latency: bank_delay,
                merged: false,
            };
        }
        self.l1d_stats.misses += 1;

        // Train the prefetcher on the demand-miss stream.
        let mut burst = std::mem::take(&mut self.pf_scratch);
        burst.clear();
        burst.extend_from_slice(self.prefetcher.observe_miss(pc, addr));
        for &pf in &burst {
            self.issue_prefetch(pf, start);
        }
        self.pf_scratch = burst;

        // L1 MSHR: merge, allocate, or stall on a full file.
        let (level, residual, merged) = match self.l1d_mshr.access(addr, Cycle::NEVER, false) {
            MshrOutcome::Merged(complete) => {
                self.l1d_stats.mshr_merges += 1;
                (MemLevel::L2, complete.since(start), true)
            }
            MshrOutcome::Full(earliest) => {
                // Wait for a free MSHR, then pay the full L2 path.
                let wait = earliest.since(start);
                let (lvl, res) = self.l2_path(addr, start + wait);
                (lvl, wait + res, false)
            }
            MshrOutcome::Allocated => {
                // Placeholder entry was pushed with NEVER; fix it up below.
                let (lvl, res) = self.l2_path(addr, start);
                self.fixup_l1_mshr(addr, start + res);
                (lvl, res, false)
            }
        };
        LoadResponse {
            level,
            bank_delay,
            extra_latency: bank_delay + residual,
            merged,
        }
    }

    /// Rewrites the completion time of the just-allocated L1 MSHR entry.
    fn fixup_l1_mshr(&mut self, addr: Addr, complete: Cycle) {
        // Re-access merges into the placeholder; replace by draining it
        // would be wrong, so the MSHR file exposes no mutation — instead we
        // exploit that `access` on a present line returns Merged and the
        // entry keeps its original completion. To keep the API small we
        // rebuild the entry here.
        self.l1d_mshr.set_completion(addr, complete);
    }

    /// The L2-and-beyond path for a demand miss whose L2 access starts at
    /// `start`. Returns the serviced level and the residual latency beyond
    /// the L1 load-to-use.
    fn l2_path(&mut self, addr: Addr, start: Cycle) -> (MemLevel, u64) {
        self.l2_stats.accesses += 1;
        if let Lookup::Hit { was_prefetch } = self.l2.lookup(addr) {
            self.l2_stats.hits += 1;
            if was_prefetch {
                self.l2_stats.prefetch_hits += 1;
            }
            return (MemLevel::L2, self.l2_latency);
        }
        self.l2_stats.misses += 1;
        match self.l2_mshr.access(addr, Cycle::NEVER, false) {
            MshrOutcome::Merged(complete) => {
                self.l2_stats.mshr_merges += 1;
                (MemLevel::Dram, self.l2_latency + complete.since(start))
            }
            MshrOutcome::Full(earliest) => {
                let wait = earliest.since(start);
                let dram_lat = self.dram.read(addr, start + wait + self.l2_latency);
                let residual = wait + self.l2_latency + dram_lat;
                (MemLevel::Dram, residual)
            }
            MshrOutcome::Allocated => {
                let dram_lat = self.dram.read(addr, start + self.l2_latency);
                let residual = self.l2_latency + dram_lat;
                self.l2_mshr.set_completion(addr, start + residual);
                (MemLevel::Dram, residual)
            }
        }
    }

    /// Issues a prefetch for `line` into the L2 at `now`.
    fn issue_prefetch(&mut self, line: Addr, now: Cycle) {
        if self.l2.probe(line) || self.l2_mshr.contains(line) {
            return;
        }
        self.l2_stats.prefetches += 1;
        if let MshrOutcome::Allocated = self.l2_mshr.access(line, Cycle::NEVER, true) {
            let dram_lat = self.dram.read(line, now + self.l2_latency);
            self.l2_mshr
                .set_completion(line, now + self.l2_latency + dram_lat);
        }
    }

    /// Applies a committed store: write-allocate into L1D and L2 with no
    /// latency modeling (the store queue and the dedicated write ports
    /// hide store latency; stores do not contend for the load banks —
    /// Table 1 provisions 2R/2W ports).
    pub fn store_commit(&mut self, addr: Addr, now: Cycle) {
        self.drain_fills(now);
        self.store_accesses += 1;
        if !self.l1d.probe(addr) {
            self.store_misses += 1;
            if !self.l2.probe(addr) {
                self.l2.fill(addr, false);
            }
            self.l1d.fill(addr, false);
        } else {
            // refresh LRU
            let _ = self.l1d.lookup(addr);
        }
    }

    /// Fetches the instruction line containing `pc`; returns extra fetch
    /// cycles (0 on an L1I hit; kernels are tiny so misses are cold-only).
    pub fn icache_fetch(&mut self, pc: Pc, _now: Cycle) -> u64 {
        let addr = pc.as_addr();
        match self.l1i.lookup(addr) {
            Lookup::Hit { .. } => 0,
            Lookup::Miss => {
                self.l1i_misses += 1;
                self.l1i.fill(addr, false);
                self.l2_latency
            }
        }
    }

    /// Whether the line containing `addr` is currently in the L1D
    /// (test/diagnostic helper; does not touch LRU).
    pub fn l1d_contains(&self, addr: Addr) -> bool {
        self.l1d.probe(addr)
    }

    /// Number of prefetches the stride prefetcher has issued.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetcher.issued
    }

    /// Copies the hierarchy's counters into the simulation stats block.
    pub fn export_into(&self, stats: &mut SimStats) {
        stats.l1d = self.l1d_stats;
        stats.l2 = self.l2_stats;
        if let Some(b) = &self.bank {
            stats.bank_delayed_loads = b.delayed_accesses;
            stats.bank_delay_cycles = b.delay_cycles;
        }
        stats.loads_merged_into_mshr = self.l1d_stats.mshr_merges;
        stats.dram_row_hits = self.dram.row_hits;
        stats.dram_row_misses = self.dram.row_misses;
    }
}

impl ss_types::persist::PersistState for MemoryHierarchy {
    fn save_state(&self, w: &mut ss_types::persist::Writer) {
        use ss_types::persist::Persist;
        self.l1i.save_state(w);
        self.l1d.save_state(w);
        self.l1d_mshr.save_state(w);
        self.bank.is_some().save(w);
        if let Some(bank) = &self.bank {
            bank.save_state(w);
        }
        self.l2.save_state(w);
        self.l2_mshr.save_state(w);
        self.prefetcher.save_state(w);
        self.dram.save_state(w);
        self.l1d_stats.save(w);
        self.l2_stats.save(w);
        self.store_accesses.save(w);
        self.store_misses.save(w);
        self.l1i_misses.save(w);
    }
    fn restore_state(
        &mut self,
        r: &mut ss_types::persist::Reader<'_>,
    ) -> Result<(), ss_types::persist::DecodeError> {
        use ss_types::persist::Persist;
        self.l1i.restore_state(r)?;
        self.l1d.restore_state(r)?;
        self.l1d_mshr.restore_state(r)?;
        let has_bank = bool::load(r)?;
        match (&mut self.bank, has_bank) {
            (Some(bank), true) => bank.restore_state(r)?,
            (None, false) => {}
            _ => {
                return Err(r.err("L1D banking presence mismatch between snapshot and config"));
            }
        }
        self.l2.restore_state(r)?;
        self.l2_mshr.restore_state(r)?;
        self.prefetcher.restore_state(r)?;
        self.dram.restore_state(r)?;
        self.l1d_stats = ss_types::CacheStats::load(r)?;
        self.l2_stats = ss_types::CacheStats::load(r)?;
        self.store_accesses = u64::load(r)?;
        self.store_misses = u64::load(r)?;
        self.l1i_misses = u64::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::SimConfig;

    fn mem(banked: bool) -> MemoryHierarchy {
        let cfg = SimConfig::builder().banked_l1d(banked).build();
        MemoryHierarchy::new(&cfg)
    }

    fn pc() -> Pc {
        Pc::new(0x40_0000)
    }

    #[test]
    fn cold_load_goes_to_dram_then_hits() {
        let mut m = mem(false);
        let a = Addr::new(0x1_0000);
        let r = m.load(pc(), a, Cycle::new(10), false);
        assert_eq!(r.level, MemLevel::Dram);
        assert!(
            r.extra_latency >= 13 + 75,
            "L2 + DRAM minimum, got {}",
            r.extra_latency
        );
        // after the fill completes, the same line hits
        let done = Cycle::new(10) + r.extra_latency;
        let r2 = m.load(pc(), a, done + 1, false);
        assert_eq!(r2.level, MemLevel::L1);
        assert_eq!(r2.extra_latency, 0);
    }

    #[test]
    fn l2_hit_costs_l2_latency() {
        let mut m = mem(false);
        let a = Addr::new(0x2_0000);
        let r1 = m.load(pc(), a, Cycle::new(0), false);
        let warm = Cycle::new(0) + r1.extra_latency + 1;
        // fills land lazily on the next access: touch the line to drain
        let rh = m.load(pc(), a, warm, false);
        assert_eq!(rh.level, MemLevel::L1);
        assert!(m.l1d_contains(a));
        // Evict from L1 by filling 8 conflicting lines (8-way set).
        for w in 1..=8u64 {
            let conflict = Addr::new(0x2_0000 + w * 4096);
            let r = m.load(pc(), conflict, warm + w * 300, false);
            let _ = r;
        }
        let late = warm + 9 * 300;
        // the 9th fill drains inside this load and evicts `a` (LRU)
        let r2 = m.load(pc(), a, late, false);
        assert_eq!(r2.level, MemLevel::L2);
        assert_eq!(r2.extra_latency, 13);
    }

    #[test]
    fn secondary_miss_merges_into_mshr() {
        let mut m = mem(false);
        let a = Addr::new(0x3_0000);
        let r1 = m.load(pc(), a, Cycle::new(0), false);
        assert!(!r1.merged);
        // same line, 5 cycles later, fill still in flight
        let r2 = m.load(pc(), Addr::new(0x3_0008), Cycle::new(5), false);
        assert!(r2.merged);
        assert!(
            r2.extra_latency < r1.extra_latency,
            "merge waits only the residual: {} vs {}",
            r2.extra_latency,
            r1.extra_latency
        );
        assert_eq!(m.l1d_stats.mshr_merges, 1);
    }

    #[test]
    fn banked_l1d_delays_conflicting_pair() {
        let mut m = mem(true);
        // warm two lines, same bank (bit 3..6 equal), different sets
        let a = Addr::new(0x10_0000);
        let b = Addr::new(0x10_0000 + 512);
        let r = m.load(pc(), a, Cycle::new(0), false);
        let r2 = m.load(pc(), b, Cycle::new(1), false);
        let warm = Cycle::new(2) + r.extra_latency.max(r2.extra_latency);
        // now present both in the same cycle
        let ra = m.load(pc(), a, warm, false);
        let rb = m.load(pc(), b, warm, false);
        assert_eq!(ra.level, MemLevel::L1);
        assert_eq!(rb.level, MemLevel::L1);
        assert_eq!(ra.bank_delay, 0);
        assert_eq!(
            rb.bank_delay, 1,
            "same-bank different-set pair must conflict"
        );
        assert_eq!(rb.extra_latency, 1);
    }

    #[test]
    fn dual_ported_l1d_never_bank_delays() {
        let mut m = mem(false);
        let a = Addr::new(0x10_0000);
        let b = Addr::new(0x10_0000 + 512);
        let _ = m.load(pc(), a, Cycle::new(0), false);
        let _ = m.load(pc(), b, Cycle::new(0), false);
        let warm = Cycle::new(500);
        let ra = m.load(pc(), a, warm, false);
        let rb = m.load(pc(), b, warm, false);
        assert_eq!(ra.bank_delay, 0);
        assert_eq!(rb.bank_delay, 0);
    }

    #[test]
    fn streaming_loads_train_prefetcher_into_l2() {
        let mut m = mem(false);
        let mut now = Cycle::new(0);
        // stream lines; after training, later lines should be L2 hits
        let mut dram_count = 0;
        let mut l2_count = 0;
        for i in 0..64u64 {
            let a = Addr::new(0x100_0000 + i * 64);
            let r = m.load(pc(), a, now, false);
            now += 400; // far apart: fills complete
            match r.level {
                MemLevel::Dram => dram_count += 1,
                MemLevel::L2 => l2_count += 1,
                MemLevel::L1 => {}
            }
        }
        assert!(
            l2_count > 40,
            "prefetcher should convert DRAM misses to L2 hits: l2={l2_count} dram={dram_count}"
        );
        assert!(dram_count < 15);
        assert!(m.prefetches_issued() > 50);
    }

    #[test]
    fn wrong_path_loads_do_not_mutate_state() {
        let mut m = mem(false);
        let a = Addr::new(0x5_0000);
        let r = m.load(pc(), a, Cycle::new(0), true);
        assert_eq!(r.level, MemLevel::Dram);
        assert_eq!(
            m.l1d_stats.accesses, 0,
            "wrong path must not count as demand"
        );
        assert!(!m.l1d_contains(a), "wrong path must not fill");
        // and it must not allocate MSHRs: a later correct-path load is a
        // fresh miss
        let r2 = m.load(pc(), a, Cycle::new(1), false);
        assert!(!r2.merged);
    }

    #[test]
    fn wrong_path_loads_consume_bank_slots() {
        let mut m = mem(true);
        let a = Addr::new(0x10_0000);
        let b = Addr::new(0x10_0000 + 512);
        let _ = m.load(pc(), a, Cycle::new(0), false);
        let _ = m.load(pc(), b, Cycle::new(1), false);
        let warm = Cycle::new(600);
        let _wrong = m.load(pc(), a, warm, true);
        let rb = m.load(pc(), b, warm, false);
        assert_eq!(rb.bank_delay, 1, "wrong-path access occupies the bank");
    }

    #[test]
    fn stores_write_allocate_without_latency() {
        let mut m = mem(false);
        let a = Addr::new(0x6_0000);
        m.store_commit(a, Cycle::new(0));
        assert!(m.l1d_contains(a));
        assert_eq!(m.store_accesses, 1);
        assert_eq!(m.store_misses, 1);
        let r = m.load(pc(), a, Cycle::new(1), false);
        assert_eq!(r.level, MemLevel::L1);
    }

    #[test]
    fn icache_cold_miss_then_hits() {
        let mut m = mem(false);
        assert_eq!(m.icache_fetch(Pc::new(0x40_0000), Cycle::new(0)), 13);
        assert_eq!(
            m.icache_fetch(Pc::new(0x40_0010), Cycle::new(1)),
            0,
            "same line"
        );
        assert_eq!(m.l1i_misses, 1);
    }

    #[test]
    fn export_copies_counters() {
        let mut m = mem(true);
        let _ = m.load(pc(), Addr::new(0x9_0000), Cycle::new(0), false);
        let mut s = SimStats::default();
        m.export_into(&mut s);
        assert_eq!(s.l1d.accesses, 1);
        assert_eq!(s.l1d.misses, 1);
    }
}
