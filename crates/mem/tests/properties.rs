//! Property-based tests for the memory substrate: the cache against a
//! reference model, MSHR bookkeeping, and the bank arbiter's invariants.

use proptest::prelude::*;
use ss_mem::{BankArbiter, Lookup, MshrFile, MshrOutcome, SetAssocCache};
use ss_types::{Addr, BankedL1dConfig, CacheGeometry, Cycle};

/// Reference model: per-set LRU list of tags.
#[derive(Default, Clone)]
struct RefCache {
    sets: std::collections::HashMap<u64, Vec<u64>>,
    ways: usize,
}

impl RefCache {
    fn new(ways: usize) -> Self {
        RefCache { sets: Default::default(), ways }
    }
    fn set_tag(addr: u64) -> (u64, u64) {
        let line = addr >> 6;
        (line % 64, line / 64)
    }
    fn lookup(&mut self, addr: u64) -> bool {
        let (set, tag) = Self::set_tag(addr);
        let list = self.sets.entry(set).or_default();
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            let t = list.remove(pos);
            list.push(t); // most recent at the back
            true
        } else {
            false
        }
    }
    fn fill(&mut self, addr: u64) {
        let (set, tag) = Self::set_tag(addr);
        let ways = self.ways;
        let list = self.sets.entry(set).or_default();
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            let t = list.remove(pos);
            list.push(t);
            return;
        }
        if list.len() == ways {
            list.remove(0); // evict LRU (front)
        }
        list.push(tag);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The set-associative cache agrees with a straightforward per-set
    /// LRU reference for arbitrary lookup/fill interleavings.
    #[test]
    fn cache_matches_lru_reference(ops in proptest::collection::vec((any::<bool>(), 0u64..(1 << 14)), 1..400)) {
        // 64 sets x 8 ways x 64B = 32 KB (the L1D geometry)
        let mut cache = SetAssocCache::new(CacheGeometry {
            capacity_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
        });
        let mut reference = RefCache::new(8);
        for (is_fill, raw) in ops {
            let addr = Addr::new(raw & !7);
            if is_fill {
                cache.fill(addr, false);
                reference.fill(addr.get());
            } else {
                let hit = matches!(cache.lookup(addr), Lookup::Hit { .. });
                let ref_hit = reference.lookup(addr.get());
                prop_assert_eq!(hit, ref_hit, "divergence at {:?}", addr);
            }
        }
    }

    /// MSHR: outstanding count never exceeds capacity; merged accesses
    /// always return the original completion; drain delivers everything
    /// exactly once.
    #[test]
    fn mshr_bookkeeping(lines in proptest::collection::vec(0u64..32, 1..100), cap in 1u32..16) {
        let mut m = MshrFile::new(cap, 64);
        let mut expected_fills = std::collections::HashSet::new();
        for (i, line) in lines.iter().enumerate() {
            let addr = Addr::new(line * 64);
            match m.access(addr, Cycle::new(1_000 + i as u64), false) {
                MshrOutcome::Allocated => {
                    m.set_completion(addr, Cycle::new(1_000 + i as u64));
                    expected_fills.insert(*line);
                }
                MshrOutcome::Merged(c) => prop_assert!(c.get() >= 1_000),
                MshrOutcome::Full(_) => prop_assert!(m.len() as u32 == cap),
            }
            prop_assert!(m.len() as u32 <= cap);
        }
        let mut fills = Vec::new();
        m.drain(Cycle::new(10_000), |a, _| fills.push(a.get() / 64));
        let fill_set: std::collections::HashSet<u64> = fills.iter().copied().collect();
        prop_assert_eq!(fill_set.len(), fills.len(), "no duplicate fills");
        prop_assert_eq!(fill_set, expected_fills);
        prop_assert!(m.is_empty());
    }

    /// The bank arbiter never grants more than two accesses per cycle and
    /// never grants two same-bank different-set accesses together; delays
    /// are exactly `service_cycle − request_cycle`.
    #[test]
    fn bank_arbiter_respects_port_and_bank_limits(
        reqs in proptest::collection::vec((0u64..8, 0u64..64), 1..200),
        gap in 0u64..3,
    ) {
        let mut arb = BankArbiter::new(BankedL1dConfig::default(), 64, 64);
        let mut now = 1u64;
        // service log: (cycle, bank, set)
        let mut granted: Vec<(u64, u64, u64)> = Vec::new();
        for (i, (bank, set)) in reqs.iter().enumerate() {
            if i % 2 == 0 {
                now += gap;
            }
            let addr = Addr::new(set * 64 + bank * 8);
            let g = arb.request(addr, Cycle::new(now));
            granted.push((now + g.delay, *bank, *set));
        }
        // Per service cycle: at most 2 accesses; same-bank pairs must be
        // same-set (the line buffer rule).
        let mut by_cycle: std::collections::HashMap<u64, Vec<(u64, u64)>> = Default::default();
        for (c, b, s) in granted {
            by_cycle.entry(c).or_default().push((b, s));
        }
        for (c, v) in by_cycle {
            prop_assert!(v.len() <= 2, "cycle {c} granted {} accesses", v.len());
            if v.len() == 2 && v[0].0 == v[1].0 {
                prop_assert_eq!(v[0].1, v[1].1, "same-bank pair must share a set (cycle {})", c);
            }
        }
    }
}
