//! Randomized (deterministic, seeded) tests for the memory substrate:
//! the cache against a reference model, MSHR bookkeeping, and the bank
//! arbiter's invariants. Formerly proptest properties; now plain loops
//! over the vendored [`Xoshiro256`] generator so the crate builds
//! offline.

use ss_mem::{BankArbiter, Lookup, MshrFile, MshrOutcome, SetAssocCache};
use ss_types::rng::Xoshiro256;
use ss_types::{Addr, BankedL1dConfig, CacheGeometry, Cycle};

/// Reference model: per-set LRU list of tags.
#[derive(Default, Clone)]
struct RefCache {
    sets: std::collections::HashMap<u64, Vec<u64>>,
    ways: usize,
}

impl RefCache {
    fn new(ways: usize) -> Self {
        RefCache {
            sets: Default::default(),
            ways,
        }
    }
    fn set_tag(addr: u64) -> (u64, u64) {
        let line = addr >> 6;
        (line % 64, line / 64)
    }
    fn lookup(&mut self, addr: u64) -> bool {
        let (set, tag) = Self::set_tag(addr);
        let list = self.sets.entry(set).or_default();
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            let t = list.remove(pos);
            list.push(t); // most recent at the back
            true
        } else {
            false
        }
    }
    fn fill(&mut self, addr: u64) {
        let (set, tag) = Self::set_tag(addr);
        let ways = self.ways;
        let list = self.sets.entry(set).or_default();
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            let t = list.remove(pos);
            list.push(t);
            return;
        }
        if list.len() == ways {
            list.remove(0); // evict LRU (front)
        }
        list.push(tag);
    }
}

/// The set-associative cache agrees with a straightforward per-set
/// LRU reference for arbitrary lookup/fill interleavings.
#[test]
fn cache_matches_lru_reference() {
    let mut rng = Xoshiro256::seed_from_u64(0xCAC4E);
    for case in 0..64 {
        // 64 sets x 8 ways x 64B = 32 KB (the L1D geometry)
        let mut cache = SetAssocCache::new(CacheGeometry {
            capacity_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
        });
        let mut reference = RefCache::new(8);
        let ops = 1 + rng.next_below(399) as usize;
        for _ in 0..ops {
            let is_fill = rng.next_bool();
            let raw = rng.next_below(1 << 14);
            let addr = Addr::new(raw & !7);
            if is_fill {
                cache.fill(addr, false);
                reference.fill(addr.get());
            } else {
                let hit = matches!(cache.lookup(addr), Lookup::Hit { .. });
                let ref_hit = reference.lookup(addr.get());
                assert_eq!(hit, ref_hit, "case {case}: divergence at {addr:?}");
            }
        }
    }
}

/// MSHR: outstanding count never exceeds capacity; merged accesses
/// always return the original completion; drain delivers everything
/// exactly once.
#[test]
fn mshr_bookkeeping() {
    let mut rng = Xoshiro256::seed_from_u64(0x354);
    for case in 0..64 {
        let cap = 1 + rng.next_below(15) as u32;
        let n_lines = 1 + rng.next_below(99) as usize;
        let lines: Vec<u64> = (0..n_lines).map(|_| rng.next_below(32)).collect();
        let mut m = MshrFile::new(cap, 64);
        let mut expected_fills = std::collections::HashSet::new();
        for (i, line) in lines.iter().enumerate() {
            let addr = Addr::new(line * 64);
            match m.access(addr, Cycle::new(1_000 + i as u64), false) {
                MshrOutcome::Allocated => {
                    m.set_completion(addr, Cycle::new(1_000 + i as u64));
                    expected_fills.insert(*line);
                }
                MshrOutcome::Merged(c) => assert!(c.get() >= 1_000, "case {case}"),
                MshrOutcome::Full(_) => assert!(m.len() as u32 == cap, "case {case}"),
            }
            assert!(m.len() as u32 <= cap, "case {case}");
        }
        let mut fills = Vec::new();
        m.drain(Cycle::new(10_000), |a, _| fills.push(a.get() / 64));
        let fill_set: std::collections::HashSet<u64> = fills.iter().copied().collect();
        assert_eq!(
            fill_set.len(),
            fills.len(),
            "case {case}: no duplicate fills"
        );
        assert_eq!(fill_set, expected_fills, "case {case}");
        assert!(m.is_empty(), "case {case}");
    }
}

/// The bank arbiter never grants more than two accesses per cycle and
/// never grants two same-bank different-set accesses together; delays
/// are exactly `service_cycle − request_cycle`.
#[test]
fn bank_arbiter_respects_port_and_bank_limits() {
    let mut rng = Xoshiro256::seed_from_u64(0xBA4B);
    for case in 0..64 {
        let n_reqs = 1 + rng.next_below(199) as usize;
        let reqs: Vec<(u64, u64)> = (0..n_reqs)
            .map(|_| (rng.next_below(8), rng.next_below(64)))
            .collect();
        let gap = rng.next_below(3);
        let mut arb = BankArbiter::new(BankedL1dConfig::default(), 64, 64);
        let mut now = 1u64;
        // service log: (cycle, bank, set)
        let mut granted: Vec<(u64, u64, u64)> = Vec::new();
        for (i, (bank, set)) in reqs.iter().enumerate() {
            if i % 2 == 0 {
                now += gap;
            }
            let addr = Addr::new(set * 64 + bank * 8);
            let g = arb.request(addr, Cycle::new(now));
            granted.push((now + g.delay, *bank, *set));
        }
        // Per service cycle: at most 2 accesses; same-bank pairs must be
        // same-set (the line buffer rule).
        let mut by_cycle: std::collections::HashMap<u64, Vec<(u64, u64)>> = Default::default();
        for (c, b, s) in granted {
            by_cycle.entry(c).or_default().push((b, s));
        }
        for (c, v) in by_cycle {
            assert!(
                v.len() <= 2,
                "case {case}: cycle {c} granted {} accesses",
                v.len()
            );
            if v.len() == 2 && v[0].0 == v[1].0 {
                assert_eq!(
                    v[0].1, v[1].1,
                    "case {case}: same-bank pair must share a set (cycle {c})"
                );
            }
        }
    }
}
