//! The event-driven ready queue behind the issue stage.
//!
//! [`SchedQueue`] composes the `ss-types` scheduler primitives into the
//! structure the pipeline maintains *incrementally* instead of rebuilding
//! by scanning the ROB every cycle:
//!
//! * a ready bitmap ([`ss_types::SeqBitmap`]) — the age-ordered set of
//!   IQ-resident µ-ops believed selectable right now;
//! * a wake heap ([`ss_types::WakeHeap`]) — µ-ops whose sources all carry
//!   *finite* future wake times, parked until the latest of them;
//! * store-waiter lists — µ-ops blocked on a predicted store dependence,
//!   parked per store and released when that store executes or commits;
//! * an epoch ring ([`ss_types::EpochRing`]) — generation counters that
//!   lazily invalidate every parked reference when a µ-op re-registers,
//!   issues, or is flushed (references are discarded on pop, never
//!   removed in place).
//!
//! The fourth parking surface — per-register consumer watch lists fired
//! by wake-time changes — lives in [`crate::rename::RenameUnit`], next to
//! the scoreboard it indexes. See DESIGN.md "Scheduler data structures"
//! for the full event inventory and the equivalence argument against the
//! legacy scan.

use ss_types::{Cycle, EpochRing, SeqBitmap, SeqNum, WakeHeap};

/// Incrementally-maintained scheduler state for the IQ selection phase.
#[derive(Debug)]
pub struct SchedQueue {
    ready: SeqBitmap,
    heap: WakeHeap,
    epochs: EpochRing,
    /// Ring of per-store waiter lists, indexed by the store's sequence
    /// slot (same geometry as the bitmap). Stale records are dropped by
    /// epoch check when fired.
    store_waiters: Vec<Vec<(SeqNum, u32)>>,
    store_mask: u64,
    /// Waiters released by a store event, pending re-registration.
    store_woken: Vec<(SeqNum, u32)>,
}

impl SchedQueue {
    /// Creates scheduler state for a machine with `rob_entries` in-flight
    /// µ-ops.
    pub fn new(rob_entries: usize) -> Self {
        let ready = SeqBitmap::new(rob_entries);
        let cap = ready.capacity();
        SchedQueue {
            ready,
            heap: WakeHeap::new(rob_entries),
            epochs: EpochRing::new(rob_entries),
            store_waiters: vec![Vec::new(); cap],
            store_mask: (cap - 1) as u64,
            store_woken: Vec::new(),
        }
    }

    /// Invalidates every outstanding parked reference to `seq` and clears
    /// its ready bit; returns the fresh epoch for new registrations.
    pub fn invalidate(&mut self, seq: SeqNum) -> u32 {
        self.ready.remove(seq);
        self.epochs.bump(seq)
    }

    /// Whether a parked reference stamped `epoch` is still current.
    pub fn epoch_matches(&self, seq: SeqNum, epoch: u32) -> bool {
        self.epochs.matches(seq, epoch)
    }

    /// Marks `seq` ready for selection.
    pub fn mark_ready(&mut self, seq: SeqNum) {
        self.ready.insert(seq);
    }

    /// Whether `seq` is currently marked ready.
    pub fn is_ready(&self, seq: SeqNum) -> bool {
        self.ready.contains(seq)
    }

    /// Ready entries currently marked.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Collects the ready set within `[base, base + span)` into `out`,
    /// oldest first.
    pub fn collect_ready(&self, base: SeqNum, span: usize, out: &mut Vec<SeqNum>) {
        self.ready.collect_range(base, span, out);
    }

    /// Collects at most the `cap` oldest ready entries in
    /// `[base, base + span)` into `out`. The issue stage batches its
    /// selection this way: a full ready set can be IQ-sized while only an
    /// issue-width's worth can leave per cycle.
    pub fn collect_ready_capped(
        &self,
        base: SeqNum,
        span: usize,
        cap: usize,
        out: &mut Vec<SeqNum>,
    ) {
        self.ready.collect_range_capped(base, span, cap, out);
    }

    /// Parks `seq` until cycle `at` (all blocking sources have finite
    /// wake times; `at` is the latest).
    pub fn park_until(&mut self, at: Cycle, seq: SeqNum, epoch: u32) {
        self.heap.push(at, seq, epoch);
    }

    /// Pops the next timer-parked entry due at `now`, skipping records
    /// whose epoch went stale since parking.
    pub fn pop_due(&mut self, now: Cycle) -> Option<SeqNum> {
        while let Some((seq, epoch)) = self.heap.pop_due(now) {
            if self.epochs.matches(seq, epoch) {
                return Some(seq);
            }
        }
        None
    }

    /// The earliest cycle a *valid* timer-parked entry is due, if any.
    /// Stale-epoch heap heads are discarded on the way (lazy deletion,
    /// same as [`Self::pop_due`] — dropping them early is observationally
    /// identical since a stale pop never produces an event).
    pub fn next_due(&mut self) -> Option<Cycle> {
        while let Some((at, seq, epoch)) = self.heap.peek() {
            if self.epochs.matches(seq, epoch) {
                return Some(at);
            }
            self.heap.pop_head();
        }
        None
    }

    /// Whether store-released waiters are pending re-registration.
    /// (Always false between ticks — store events drain within the cycle
    /// that fires them — but the quiet-cycle probe checks rather than
    /// assumes.)
    pub fn has_store_woken(&self) -> bool {
        !self.store_woken.is_empty()
    }

    /// Parks `waiter` until `store` executes or commits.
    pub fn park_on_store(&mut self, store: SeqNum, waiter: SeqNum, epoch: u32) {
        self.store_waiters[(store.get() & self.store_mask) as usize].push((waiter, epoch));
    }

    /// Releases every µ-op parked on `store` into the internal
    /// store-woken buffer (drained with [`Self::pop_store_woken`]).
    pub fn fire_store(&mut self, store: SeqNum) {
        let list = &mut self.store_waiters[(store.get() & self.store_mask) as usize];
        if !list.is_empty() {
            self.store_woken.append(list);
        }
    }

    /// Pops one store-released waiter whose parked reference is still
    /// current.
    pub fn pop_store_woken(&mut self) -> Option<SeqNum> {
        while let Some((seq, epoch)) = self.store_woken.pop() {
            if self.epochs.matches(seq, epoch) {
                return Some(seq);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalidate_clears_ready_and_stales_references() {
        let mut q = SchedQueue::new(192);
        let s = SeqNum::new(9);
        let epoch = q.invalidate(s);
        q.park_until(Cycle::new(5), s, epoch);
        q.mark_ready(s);
        assert!(q.is_ready(s));
        let _fresh = q.invalidate(s);
        assert!(!q.is_ready(s));
        assert_eq!(q.pop_due(Cycle::new(10)), None, "stale timer is dropped");
    }

    #[test]
    fn store_waiters_fire_by_store_seq() {
        let mut q = SchedQueue::new(192);
        let store = SeqNum::new(4);
        let ld1 = SeqNum::new(7);
        let ld2 = SeqNum::new(8);
        let e1 = q.invalidate(ld1);
        let e2 = q.invalidate(ld2);
        q.park_on_store(store, ld1, e1);
        q.park_on_store(store, ld2, e2);
        assert_eq!(q.pop_store_woken(), None);
        // ld2 re-registers before the store fires: its record is stale.
        let _ = q.invalidate(ld2);
        q.fire_store(store);
        assert_eq!(q.pop_store_woken(), Some(ld1));
        assert_eq!(q.pop_store_woken(), None);
    }

    #[test]
    fn timer_parking_pops_in_order() {
        let mut q = SchedQueue::new(64);
        let a = SeqNum::new(1);
        let b = SeqNum::new(2);
        let ea = q.invalidate(a);
        let eb = q.invalidate(b);
        q.park_until(Cycle::new(20), a, ea);
        q.park_until(Cycle::new(10), b, eb);
        assert_eq!(q.pop_due(Cycle::new(9)), None);
        assert_eq!(q.pop_due(Cycle::new(15)), Some(b));
        assert_eq!(q.pop_due(Cycle::new(15)), None);
        assert_eq!(q.pop_due(Cycle::new(20)), Some(a));
    }
}

ss_types::impl_persist_state!(SchedQueue { store_waiters, store_woken ; ready, heap, epochs });
