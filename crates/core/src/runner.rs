//! Convenience runners: build a simulator for a benchmark, warm it up,
//! measure, and return warmup-corrected statistics.

use crate::diff::DiffChecker;
use crate::pipeline::Simulator;
use ss_oracle::InOrderModel;
use ss_types::{SimConfig, SimError, SimStats};
use ss_workloads::{KernelSpec, KernelTrace, TraceSource};

/// How long to run a measurement, in committed µ-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLength {
    /// Committed µ-ops of warmup discarded from the statistics.
    pub warmup: u64,
    /// Committed µ-ops measured.
    pub measure: u64,
}

impl RunLength {
    /// The default experiment length used by the harness: 200K warmup +
    /// 2M measured µ-ops (the paper used 50M + 100M on gem5; synthetic
    /// kernels are stationary and converge much faster — see DESIGN.md).
    pub const FULL: RunLength = RunLength {
        warmup: 200_000,
        measure: 2_000_000,
    };
    /// A short smoke-test length for unit/integration tests.
    pub const SMOKE: RunLength = RunLength {
        warmup: 5_000,
        measure: 30_000,
    };
}

/// Runs `trace` on a machine described by `cfg` and returns statistics
/// for the measurement window only.
///
/// # Panics
///
/// Panics on any error [`try_run_trace`] reports.
pub fn run_trace<T: TraceSource>(cfg: SimConfig, trace: T, len: RunLength) -> SimStats {
    try_run_trace(cfg, trace, len).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs a kernel spec (convenience wrapper over [`run_trace`]).
///
/// # Panics
///
/// Panics on any error [`try_run_kernel`] reports.
pub fn run_kernel(cfg: SimConfig, spec: KernelSpec, len: RunLength) -> SimStats {
    run_trace(cfg, KernelTrace::new(spec), len)
}

/// Non-panicking variant of [`run_trace`]: configuration problems,
/// watchdog-detected deadlocks, invariant violations, and malformed
/// traces come back as a [`SimError`].
pub fn try_run_trace<T: TraceSource>(
    cfg: SimConfig,
    trace: T,
    len: RunLength,
) -> Result<SimStats, SimError> {
    cfg.try_validate()?;
    let mut sim = Simulator::new(cfg, trace);
    let warm = sim.try_run_committed(len.warmup)?;
    let end = sim.try_run_committed(len.measure)?;
    Ok(end.delta(&warm))
}

/// Non-panicking variant of [`run_kernel`].
pub fn try_run_kernel(
    cfg: SimConfig,
    spec: KernelSpec,
    len: RunLength,
) -> Result<SimStats, SimError> {
    try_run_trace(cfg, KernelTrace::new(spec), len)
}

/// Like [`try_run_kernel`], but with the differential oracle attached:
/// every commit is compared against an in-order golden model walking a
/// second copy of the same deterministic kernel trace, and the first
/// content mismatch ends the run with [`SimError::Divergence`].
pub fn try_run_kernel_checked(
    cfg: SimConfig,
    spec: KernelSpec,
    len: RunLength,
) -> Result<SimStats, SimError> {
    cfg.try_validate()?;
    spec.validate().map_err(SimError::ConfigInvalid)?;
    let oracle = InOrderModel::from_spec(spec.clone());
    let mut sim = Simulator::new(cfg, KernelTrace::new(spec));
    sim.attach_diff_checker(DiffChecker::new(Box::new(oracle)));
    let warm = sim.try_run_committed(len.warmup)?;
    let end = sim.try_run_committed(len.measure)?;
    Ok(end.delta(&warm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::SchedPolicyKind;
    use ss_workloads::kernels;

    #[test]
    fn smoke_run_produces_sane_stats() {
        let cfg = SimConfig::builder()
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .build();
        let s = run_kernel(cfg, kernels::fp_compute(1), RunLength::SMOKE);
        // run_committed stops at the first commit boundary past the target
        assert!(s.committed_uops >= 30_000 && s.committed_uops < 30_000 + 8);
        assert!(s.cycles > 0);
        let ipc = s.ipc();
        assert!(ipc > 0.1 && ipc < 8.0, "implausible IPC {ipc}");
    }

    #[test]
    fn checked_run_matches_unchecked_stats() {
        let cfg = SimConfig::builder()
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .commit_log_window(32)
            .build();
        let len = RunLength {
            warmup: 1_000,
            measure: 5_000,
        };
        let plain = try_run_kernel(cfg.clone(), kernels::mix_int(2), len).unwrap();
        let checked = try_run_kernel_checked(cfg, kernels::mix_int(2), len).unwrap();
        assert_eq!(plain.committed_uops, checked.committed_uops);
        assert_eq!(
            plain.cycles, checked.cycles,
            "checker must not perturb timing"
        );
    }
}
