//! Convenience runners: build a simulator for a benchmark, warm it up,
//! measure, and return warmup-corrected statistics.

use crate::diff::DiffChecker;
use crate::pipeline::Simulator;
use ss_oracle::InOrderModel;
use ss_snapshot::Snapshot;
use ss_types::persist::PersistState;
use ss_types::{SimConfig, SimError, SimStats};
use ss_workloads::{KernelSpec, KernelTrace, TraceSource};

/// How long to run a measurement, in committed µ-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLength {
    /// Committed µ-ops of warmup discarded from the statistics.
    pub warmup: u64,
    /// Committed µ-ops measured.
    pub measure: u64,
}

impl RunLength {
    /// The default experiment length used by the harness: 200K warmup +
    /// 2M measured µ-ops (the paper used 50M + 100M on gem5; synthetic
    /// kernels are stationary and converge much faster — see DESIGN.md).
    pub const FULL: RunLength = RunLength {
        warmup: 200_000,
        measure: 2_000_000,
    };
    /// A short smoke-test length for unit/integration tests.
    pub const SMOKE: RunLength = RunLength {
        warmup: 5_000,
        measure: 30_000,
    };
}

/// Runs `trace` on a machine described by `cfg` and returns statistics
/// for the measurement window only.
///
/// # Panics
///
/// Panics on any error [`try_run_trace`] reports.
pub fn run_trace<T: TraceSource>(cfg: SimConfig, trace: T, len: RunLength) -> SimStats {
    try_run_trace(cfg, trace, len).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs a kernel spec (convenience wrapper over [`run_trace`]).
///
/// # Panics
///
/// Panics on any error [`try_run_kernel`] reports.
pub fn run_kernel(cfg: SimConfig, spec: KernelSpec, len: RunLength) -> SimStats {
    run_trace(cfg, KernelTrace::new(spec), len)
}

/// Non-panicking variant of [`run_trace`]: configuration problems,
/// watchdog-detected deadlocks, invariant violations, and malformed
/// traces come back as a [`SimError`].
pub fn try_run_trace<T: TraceSource>(
    cfg: SimConfig,
    trace: T,
    len: RunLength,
) -> Result<SimStats, SimError> {
    cfg.try_validate()?;
    let mut sim = Simulator::new(cfg, trace);
    let warm = sim.try_run_committed(len.warmup)?;
    let end = sim.try_run_committed(len.measure)?;
    Ok(end.delta(&warm))
}

/// Non-panicking variant of [`run_kernel`].
pub fn try_run_kernel(
    cfg: SimConfig,
    spec: KernelSpec,
    len: RunLength,
) -> Result<SimStats, SimError> {
    try_run_trace(cfg, KernelTrace::new(spec), len)
}

/// Runs only the warmup phase of a `(cfg, trace)` cell and captures the
/// warm machine state as a [`Snapshot`]. Feed the result to
/// [`try_run_trace_from_snapshot`] to fork any number of measurement runs
/// off the shared warm state without re-simulating the warmup.
pub fn try_warm_up_trace<T: TraceSource + PersistState>(
    cfg: SimConfig,
    trace: T,
    warmup: u64,
) -> Result<Snapshot, SimError> {
    cfg.try_validate()?;
    let mut sim = Simulator::new(cfg, trace);
    sim.try_run_committed(warmup)?;
    Ok(sim.capture())
}

/// Kernel-spec convenience wrapper over [`try_warm_up_trace`].
pub fn try_warm_up_kernel(
    cfg: SimConfig,
    spec: KernelSpec,
    warmup: u64,
) -> Result<Snapshot, SimError> {
    try_warm_up_trace(cfg, KernelTrace::new(spec), warmup)
}

/// Resumes from a warm-state snapshot and measures `measure` committed
/// µ-ops, returning warmup-corrected statistics — bit-identical to the
/// fresh-run [`try_run_trace`] with the same `(cfg, trace, warmup,
/// measure)` cell (the statistics baseline travels inside the snapshot).
///
/// `checkpoint` names the snapshot's filesystem path, if it has one; it
/// is attached to any failure report so crashes can be reproduced from
/// the warm state directly.
pub fn try_run_trace_from_snapshot<T: TraceSource + PersistState>(
    cfg: SimConfig,
    trace: T,
    snap: &Snapshot,
    measure: u64,
    checkpoint: Option<&str>,
) -> Result<SimStats, SimError> {
    cfg.try_validate()?;
    let mut sim = Simulator::new(cfg, trace);
    sim.restore(snap)?;
    if let Some(cp) = checkpoint {
        sim.set_checkpoint_note(cp);
    }
    let warm = sim.stats();
    let end = sim.try_run_committed(measure)?;
    Ok(end.delta(&warm))
}

/// Kernel-spec convenience wrapper over [`try_run_trace_from_snapshot`].
pub fn try_run_kernel_from_snapshot(
    cfg: SimConfig,
    spec: KernelSpec,
    snap: &Snapshot,
    measure: u64,
    checkpoint: Option<&str>,
) -> Result<SimStats, SimError> {
    try_run_trace_from_snapshot(cfg, KernelTrace::new(spec), snap, measure, checkpoint)
}

/// Like [`try_run_kernel`], but with the differential oracle attached:
/// every commit is compared against an in-order golden model walking a
/// second copy of the same deterministic kernel trace, and the first
/// content mismatch ends the run with [`SimError::Divergence`].
pub fn try_run_kernel_checked(
    cfg: SimConfig,
    spec: KernelSpec,
    len: RunLength,
) -> Result<SimStats, SimError> {
    cfg.try_validate()?;
    spec.validate().map_err(SimError::ConfigInvalid)?;
    let oracle = InOrderModel::from_spec(spec.clone());
    let mut sim = Simulator::new(cfg, KernelTrace::new(spec));
    sim.attach_diff_checker(DiffChecker::new(Box::new(oracle)));
    let warm = sim.try_run_committed(len.warmup)?;
    let end = sim.try_run_committed(len.measure)?;
    Ok(end.delta(&warm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::SchedPolicyKind;
    use ss_workloads::kernels;

    #[test]
    fn smoke_run_produces_sane_stats() {
        let cfg = SimConfig::builder()
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .build();
        let s = run_kernel(cfg, kernels::fp_compute(1), RunLength::SMOKE);
        // run_committed stops at the first commit boundary past the target
        assert!(s.committed_uops >= 30_000 && s.committed_uops < 30_000 + 8);
        assert!(s.cycles > 0);
        let ipc = s.ipc();
        assert!(ipc > 0.1 && ipc < 8.0, "implausible IPC {ipc}");
    }

    #[test]
    fn warm_restore_run_is_stat_identical_to_fresh_run() {
        let cfg = SimConfig::builder().build();
        let len = RunLength {
            warmup: 2_000,
            measure: 8_000,
        };
        let fresh = try_run_kernel(cfg.clone(), kernels::mix_int(3), len).unwrap();
        let snap = try_warm_up_kernel(cfg.clone(), kernels::mix_int(3), len.warmup).unwrap();
        let warm = try_run_kernel_from_snapshot(
            cfg,
            kernels::mix_int(3),
            &snap,
            len.measure,
            Some("warm/test.snap"),
        )
        .unwrap();
        assert_eq!(fresh, warm, "restored run must be bit-identical");
    }

    #[test]
    fn checked_run_matches_unchecked_stats() {
        let cfg = SimConfig::builder()
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .commit_log_window(32)
            .build();
        let len = RunLength {
            warmup: 1_000,
            measure: 5_000,
        };
        let plain = try_run_kernel(cfg.clone(), kernels::mix_int(2), len).unwrap();
        let checked = try_run_kernel_checked(cfg, kernels::mix_int(2), len).unwrap();
        assert_eq!(plain.committed_uops, checked.committed_uops);
        assert_eq!(
            plain.cycles, checked.cycles,
            "checker must not perturb timing"
        );
    }
}
