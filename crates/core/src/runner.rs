//! The unified runner: every way to execute a simulation — fresh runs,
//! warm-state forks, oracle-checked runs, fault injection, trace capture
//! — behind one builder, [`RunRequest`], with one entry point,
//! [`RunRequest::execute`].
//!
//! A `RunRequest` is `source × config × length × oracle-check ×
//! snapshot-fork × trace-sink × fault-plan`. The encodable subset of
//! that product has a canonical single-line text form ([`fmt::Display`]
//! / [`FromStr`], property-tested like
//! [`ConfigSpec`](ss_types::ConfigSpec)), so the same type is both the
//! library API and the `experiments serve` wire protocol:
//!
//! ```text
//! src=bench:fp_compute@0xb5 cfg=SpecSched_4_Crit len=w1000m5000 check=1
//! ```
//!
//! Real RV32IM programs run through the same front door: `src=rv:…`
//! resolves a [`ProgramSpec`] (suite program, ELF, or raw binary) into
//! the functional-frontend trace source, with the [`FrontendOracle`]
//! standing in for the in-order golden model when `check=1`.
//!
//! Library-only capabilities (custom [`SimConfig`]s, in-memory
//! [`KernelSpec`]s / [`Snapshot`]s, arbitrary [`TraceSource`]s) render
//! as `<...>` markers the parser rejects with a typed
//! [`ParseRequestError`] naming the marker — they can run, but not
//! travel.
//!
//! [`RunRequest::execute_observed`] adds cooperative cancellation (a
//! [`CancelFlag`] checked between bounded measurement chunks, surfacing
//! [`SimError::Cancelled`]) and incremental progress callbacks; chunked
//! execution is bit-identical to a single `try_run_committed` call
//! because commit targets are computed against absolute commit counts.

use crate::diff::DiffChecker;
use crate::fault::FaultPlan;
use crate::pipeline::Simulator;
use ss_frontend::{FrontendOracle, ProgramSpec, RvTraceSource};
use ss_oracle::InOrderModel;
use ss_snapshot::Snapshot;
use ss_types::persist::PersistState;
use ss_types::trace::{TraceEvent, TraceSink};
use ss_types::{CancelFlag, ConfigSpec, SimConfig, SimError, SimStats};
use ss_workloads::{kernels, KernelSpec, KernelTrace, TraceSource};
use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

/// How long to run a measurement, in committed µ-ops.
///
/// Canonical text form `w{warmup}m{measure}` (the same token used in
/// session cache keys and the `RunRequest` wire encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLength {
    /// Committed µ-ops of warmup discarded from the statistics.
    pub warmup: u64,
    /// Committed µ-ops measured.
    pub measure: u64,
}

impl RunLength {
    /// The default experiment length used by the harness: 200K warmup +
    /// 2M measured µ-ops (the paper used 50M + 100M on gem5; synthetic
    /// kernels are stationary and converge much faster — see DESIGN.md).
    pub const FULL: RunLength = RunLength {
        warmup: 200_000,
        measure: 2_000_000,
    };
    /// A short smoke-test length for unit/integration tests.
    pub const SMOKE: RunLength = RunLength {
        warmup: 5_000,
        measure: 30_000,
    };
}

impl fmt::Display for RunLength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}m{}", self.warmup, self.measure)
    }
}

impl FromStr for RunLength {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || format!("invalid run length `{s}` (expected `w{{warmup}}m{{measure}}`)");
        let rest = s.strip_prefix('w').ok_or_else(bad)?;
        let (w, m) = rest.split_once('m').ok_or_else(bad)?;
        Ok(RunLength {
            warmup: w.parse().map_err(|_| bad())?,
            measure: m.parse().map_err(|_| bad())?,
        })
    }
}

/// A trace source whose internal state rides along in snapshots, so
/// warm-state capture/fork works through it. Blanket-implemented; boxed
/// trait objects of it still satisfy `TraceSource + PersistState`.
pub trait RunSource: TraceSource + PersistState + Send {}
impl<T: TraceSource + PersistState + Send> RunSource for T {}

/// Where the µ-op stream comes from.
enum Source {
    /// A registry benchmark built at a seed (`bench:{name}@{seed:#x}`).
    Bench { name: String, seed: u64 },
    /// A random kernel from the generator (`gen:{seed:#x}`).
    Gen { seed: u64 },
    /// A real RV32IM program run by the functional frontend
    /// (`rv:{name}@{seed:#x}` / `rv:elf:{path}` / `rv:bin:{path}@{entry}`).
    Rv(ProgramSpec),
    /// An in-memory kernel spec (library-only).
    Spec(KernelSpec),
    /// An arbitrary caller trace (library-only; no snapshot forking).
    Trace(Box<dyn TraceSource + Send>),
    /// An arbitrary caller trace that persists into snapshots
    /// (library-only).
    Persist(Box<dyn RunSource>),
}

impl fmt::Debug for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Bench { name, seed } => write!(f, "Bench({name}@{seed:#x})"),
            Source::Gen { seed } => write!(f, "Gen({seed:#x})"),
            Source::Rv(spec) => write!(f, "Rv({spec})"),
            Source::Spec(spec) => write!(f, "Spec({})", spec.name),
            Source::Trace(t) => write!(f, "Trace({})", t.name()),
            Source::Persist(t) => write!(f, "Persist({})", t.name()),
        }
    }
}

impl PartialEq for Source {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Source::Bench { name: a, seed: x }, Source::Bench { name: b, seed: y }) => {
                a == b && x == y
            }
            (Source::Gen { seed: a }, Source::Gen { seed: b }) => a == b,
            (Source::Rv(a), Source::Rv(b)) => a == b,
            (Source::Spec(a), Source::Spec(b)) => a == b,
            // Opaque sources never compare equal (like NaN): equality is
            // only meaningful for the encodable surface.
            _ => false,
        }
    }
}

/// The machine description.
#[derive(Debug, Clone, PartialEq)]
enum Config {
    /// A named paper configuration (encodable).
    Spec(ConfigSpec),
    /// An arbitrary `SimConfig` (library-only).
    Custom(Box<SimConfig>),
}

/// Snapshot forking mode.
#[derive(Debug, PartialEq)]
enum Fork {
    /// Cold start, no snapshot involvement.
    Fresh,
    /// Run the warmup, capture the warm state into
    /// [`RunOutcome::snapshot`], then measure.
    Capture,
    /// Restore an in-memory warm snapshot and measure (library-only).
    Snapshot(Box<Snapshot>),
    /// Load a verified warm snapshot from disk and measure (encodable:
    /// `fork=snap:{path}`).
    Path(String),
}

/// What pipeline events to keep.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TraceReq {
    /// No tracing (zero-cost `NullSink` path).
    Off,
    /// Bounded flight recorder: the most recent `capacity` events
    /// (`trace=ring:{capacity}`).
    Ring(usize),
    /// Every event whose µ-op sequence number falls in `[lo, hi)`, plus
    /// occupancy samples (`trace=win:{lo}..{hi}`).
    Window(u64, u64),
}

/// Everything a finished run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Warmup-corrected statistics for the measurement window.
    pub stats: SimStats,
    /// The warm state captured after warmup, when the request asked for
    /// [`RunRequest::capture_warm`].
    pub snapshot: Option<Snapshot>,
    /// Captured pipeline events (empty unless a trace mode was set).
    pub trace: Vec<TraceEvent>,
}

/// Error from parsing a [`RunRequest`] wire line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRequestError {
    /// The offending input line.
    pub input: String,
    /// What was wrong with it.
    pub reason: String,
    /// When the input carried a library-only `<…>` marker (a rendered
    /// request whose capabilities cannot travel over the wire — e.g.
    /// `<custom>`, `<spec:…>`, `<snapshot>`, `<unset>`), the marker
    /// itself; `None` for ordinary syntax errors.
    pub library_only: Option<String>,
}

impl fmt::Display for ParseRequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid run request `{}`: {}", self.input, self.reason)
    }
}

impl std::error::Error for ParseRequestError {}

/// Lifts a parse failure into the simulator's typed error space:
/// library-only markers become a [`SimError::ConfigInvalid`] that names
/// the offending marker, so callers (and wire peers) see *which*
/// capability failed to travel rather than a generic syntax complaint.
impl From<ParseRequestError> for SimError {
    fn from(e: ParseRequestError) -> Self {
        match &e.library_only {
            Some(marker) => SimError::ConfigInvalid(format!(
                "library-only marker `{marker}` cannot travel over the wire: {e}"
            )),
            None => SimError::ConfigInvalid(e.to_string()),
        }
    }
}

/// The unified run description: build with the source constructors
/// ([`bench`](RunRequest::bench), [`generated`](RunRequest::generated),
/// [`kernel`](RunRequest::kernel), [`trace_source`](RunRequest::trace_source),
/// [`persistent_source`](RunRequest::persistent_source)), refine with the
/// chainable setters, run with [`execute`](RunRequest::execute).
#[derive(Debug, PartialEq)]
pub struct RunRequest {
    source: Source,
    config: Config,
    len: Option<RunLength>,
    deadline_ms: Option<u64>,
    check: bool,
    fork: Fork,
    trace: TraceReq,
    faults: FaultPlan,
    seed_bug: bool,
    checkpoint: Option<String>,
}

impl RunRequest {
    fn with_source(source: Source) -> Self {
        RunRequest {
            source,
            config: Config::Custom(Box::<SimConfig>::default()),
            len: None,
            deadline_ms: None,
            check: false,
            fork: Fork::Fresh,
            trace: TraceReq::Off,
            faults: FaultPlan::new(),
            seed_bug: false,
            checkpoint: None,
        }
    }

    /// A registry benchmark built at `seed` (see
    /// [`ss_workloads::BENCHMARKS`]). The name is resolved at
    /// [`execute`](RunRequest::execute) time; an unknown name is
    /// [`SimError::ConfigInvalid`].
    pub fn bench(name: impl Into<String>, seed: u64) -> Self {
        Self::with_source(Source::Bench {
            name: name.into(),
            seed,
        })
    }

    /// A random kernel from the seeded generator
    /// ([`ss_workloads::gen::gen_kernel`]).
    pub fn generated(seed: u64) -> Self {
        Self::with_source(Source::Gen { seed })
    }

    /// A real RV32IM program executed by the functional frontend
    /// (encodable: `rv:{name}@{seed:#x}`, `rv:elf:{path}`, or
    /// `rv:bin:{path}@{entry:#x}`). Resolution — suite build or file
    /// load — happens at [`execute`](RunRequest::execute) time; a
    /// failure is [`SimError::ConfigInvalid`]. Oracle checking and
    /// snapshot forking both work: the trace source persists its full
    /// architectural state, and the oracle re-walks the same program.
    pub fn program(spec: ProgramSpec) -> Self {
        Self::with_source(Source::Rv(spec))
    }

    /// An in-memory kernel spec (library-only: renders unparseable).
    pub fn kernel(spec: KernelSpec) -> Self {
        Self::with_source(Source::Spec(spec))
    }

    /// An arbitrary trace source (library-only). Snapshot forking and
    /// oracle checking are unavailable through this constructor — use
    /// [`persistent_source`](RunRequest::persistent_source) or
    /// [`kernel`](RunRequest::kernel) for those.
    pub fn trace_source(src: impl TraceSource + Send + 'static) -> Self {
        Self::with_source(Source::Trace(Box::new(src)))
    }

    /// An arbitrary trace source whose state persists into snapshots
    /// (library-only). Supports warm-state capture and restore; oracle
    /// checking still requires a kernel-backed source.
    pub fn persistent_source(src: impl TraceSource + PersistState + Send + 'static) -> Self {
        Self::with_source(Source::Persist(Box::new(src)))
    }

    /// Runs on the named paper configuration (encodable).
    pub fn config(mut self, spec: ConfigSpec) -> Self {
        self.config = Config::Spec(spec);
        self
    }

    /// Runs on an arbitrary machine description (library-only).
    pub fn custom_config(mut self, cfg: SimConfig) -> Self {
        self.config = Config::Custom(Box::new(cfg));
        self
    }

    /// Sets the warmup/measure budget. Required: executing without one
    /// is [`SimError::ConfigInvalid`].
    pub fn length(mut self, len: RunLength) -> Self {
        self.len = Some(len);
        self
    }

    /// The configured budget, if set.
    pub fn run_length(&self) -> Option<RunLength> {
        self.len
    }

    /// Bounds the run's wall-clock time: past `ms` milliseconds the run
    /// ends with [`SimError::DeadlineExceeded`], checked between
    /// measurement chunks exactly like cancellation (the chunk size is
    /// capped while a deadline is armed, so enforcement granularity is
    /// milliseconds, not the whole run). Clamped to ≥ 1 ms.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms.max(1));
        self
    }

    /// The armed wall-clock budget in milliseconds, if any.
    pub fn deadline(&self) -> Option<u64> {
        self.deadline_ms
    }

    /// Attaches the differential oracle: every commit is compared
    /// against an in-order golden model; the first mismatch ends the run
    /// with [`SimError::Divergence`]. Requires a kernel-backed or
    /// program-backed ([`program`](RunRequest::program)) source.
    pub fn checked(mut self, on: bool) -> Self {
        self.check = on;
        self
    }

    /// Captures the warm machine state after warmup into
    /// [`RunOutcome::snapshot`] (then measures, if `measure > 0`).
    pub fn capture_warm(mut self) -> Self {
        self.fork = Fork::Capture;
        self
    }

    /// Forks off an in-memory warm snapshot instead of running the
    /// warmup; the statistics baseline travels inside the snapshot.
    pub fn from_snapshot(mut self, snap: Snapshot) -> Self {
        self.fork = Fork::Snapshot(Box::new(snap));
        self
    }

    /// Forks off a verified on-disk warm snapshot (encodable). The path
    /// doubles as the failure-report checkpoint note unless
    /// [`checkpoint_note`](RunRequest::checkpoint_note) overrides it.
    pub fn from_snapshot_path(mut self, path: impl Into<String>) -> Self {
        self.fork = Fork::Path(path.into());
        self
    }

    /// Names the warm state's filesystem home in failure reports, so
    /// crashes reproduce from the checkpoint directly.
    pub fn checkpoint_note(mut self, note: impl Into<String>) -> Self {
        self.checkpoint = Some(note.into());
        self
    }

    /// Keeps a bounded flight recorder of the most recent `capacity`
    /// pipeline events (the fuzzing sink).
    pub fn ring_trace(mut self, capacity: usize) -> Self {
        self.trace = TraceReq::Ring(capacity.max(1));
        self
    }

    /// Captures every event whose µ-op sequence number falls in
    /// `[lo, hi)`, plus per-cycle occupancy samples (the pipeview /
    /// Perfetto sink).
    pub fn window_trace(mut self, window: std::ops::Range<u64>) -> Self {
        self.trace = TraceReq::Window(window.start, window.end);
        self
    }

    /// Injects a deterministic fault schedule (validated at execute).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Arms the intentional wakeup bug (oracle "teeth" test hook).
    pub fn seed_wakeup_bug(mut self) -> Self {
        self.seed_bug = true;
        self
    }

    /// The on-disk snapshot path this request forks from, if any. The
    /// serve layer uses it to satisfy the fork from its resident
    /// warm-state store instead of re-reading the file per request.
    pub fn snapshot_path(&self) -> Option<&str> {
        match &self.fork {
            Fork::Path(p) => Some(p),
            _ => None,
        }
    }

    /// The EMA cost-tracking key the serve layer buckets this request
    /// under: `{config}|{source}` — one moving average per
    /// (machine, workload) cell, whatever the lengths and trimmings.
    pub fn cost_key(&self) -> String {
        format!("{}|{}", self.config_token(), self.source_token())
    }

    fn source_token(&self) -> String {
        match &self.source {
            Source::Bench { name, seed } => format!("bench:{name}@{seed:#x}"),
            Source::Gen { seed } => format!("gen:{seed:#x}"),
            Source::Rv(spec) => spec.to_string(),
            Source::Spec(spec) => format!("<spec:{}>", spec.name),
            Source::Trace(t) => format!("<trace:{}>", t.name()),
            Source::Persist(t) => format!("<trace:{}>", t.name()),
        }
    }

    fn config_token(&self) -> String {
        match &self.config {
            Config::Spec(spec) => spec.to_string(),
            Config::Custom(_) => "<custom>".to_string(),
        }
    }

    /// Runs to completion. Equivalent to
    /// [`execute_observed`](RunRequest::execute_observed) with a fresh
    /// (never-fired) cancel flag and a single measurement chunk.
    pub fn execute(self) -> Result<RunOutcome, SimError> {
        self.execute_observed(&CancelFlag::new(), u64::MAX, |_, _| {})
    }

    /// Runs with cooperative cancellation and incremental progress.
    ///
    /// The run is sliced into chunks of at most `chunk` committed µ-ops
    /// (`0` means unbounded); between chunks `cancel` is polled —
    /// firing it ends the run with [`SimError::Cancelled`] — and
    /// `progress(done, total)` is invoked with committed-µ-op counts
    /// over the whole warmup + measure budget. Chunking is bit-identical
    /// to an unchunked run: commit targets are absolute, so the slice
    /// boundaries leave no trace in the statistics.
    pub fn execute_observed(
        self,
        cancel: &CancelFlag,
        chunk: u64,
        progress: impl FnMut(u64, u64),
    ) -> Result<RunOutcome, SimError> {
        let RunRequest {
            source,
            config,
            len,
            deadline_ms,
            check,
            fork,
            trace,
            faults,
            seed_bug,
            checkpoint,
        } = self;
        let cfg = match config {
            Config::Spec(spec) => spec.config(),
            Config::Custom(cfg) => *cfg,
        };
        cfg.try_validate()?;
        let len = len.ok_or_else(|| {
            SimError::ConfigInvalid("run request has no length (call .length(..))".into())
        })?;

        // Resolve the fork mode: disk snapshots are loaded and verified
        // here, and the path becomes the default checkpoint note.
        let (fork, checkpoint) = match fork {
            Fork::Path(path) => {
                let snap =
                    ss_snapshot::read_verified(std::path::Path::new(&path)).map_err(|e| {
                        SimError::SnapshotCorrupt {
                            path: path.clone(),
                            reason: e.to_string(),
                        }
                    })?;
                (Fork::Snapshot(Box::new(snap)), checkpoint.or(Some(path)))
            }
            other => (other, checkpoint),
        };

        let mut progress = progress;
        let chunk = if chunk == 0 { u64::MAX } else { chunk };
        // An armed deadline needs the between-chunk check to fire at
        // millisecond granularity: cap the slice size. Chunking is
        // bit-identical to an unchunked run, so this never changes stats.
        let chunk = if deadline_ms.is_some() {
            chunk.min(20_000)
        } else {
            chunk
        };
        let drive = Drive {
            len,
            fork,
            faults,
            seed_bug,
            checkpoint,
            cancel,
            chunk,
            deadline: deadline_ms.map(|ms| (std::time::Instant::now(), ms)),
            progress: &mut progress,
        };

        // Resolve the source, build the oracle when asked, dispatch.
        match source {
            Source::Bench { name, seed } => {
                let bench = kernels::benchmark(&name).ok_or_else(|| {
                    SimError::ConfigInvalid(format!("unknown benchmark `{name}`"))
                })?;
                drive.kernel(cfg, (bench.build)(seed), check, trace)
            }
            Source::Gen { seed } => {
                let mut rng = ss_types::Xoshiro256::seed_from_u64(seed);
                drive.kernel(cfg, ss_workloads::gen::gen_kernel(&mut rng), check, trace)
            }
            Source::Spec(spec) => drive.kernel(cfg, spec, check, trace),
            Source::Rv(spec) => {
                let prog = spec.resolve().map_err(SimError::ConfigInvalid)?;
                let checker =
                    check.then(|| DiffChecker::new(Box::new(FrontendOracle::new(prog.clone()))));
                drive.sink_dispatch(cfg, RvTraceSource::new(prog), checker, trace)
            }
            Source::Persist(src) => {
                if check {
                    return Err(SimError::ConfigInvalid(
                        "oracle checking requires a kernel-backed source".into(),
                    ));
                }
                drive.sink_dispatch(cfg, src, None, trace)
            }
            Source::Trace(src) => {
                if check {
                    return Err(SimError::ConfigInvalid(
                        "oracle checking requires a kernel-backed source".into(),
                    ));
                }
                if !matches!(drive.fork, Fork::Fresh) {
                    return Err(SimError::ConfigInvalid(
                        "snapshot forking requires a persistent source (use \
                         persistent_source or a kernel-backed source)"
                            .into(),
                    ));
                }
                drive.plain_sink_dispatch(cfg, src, trace)
            }
        }
    }
}

/// The resolved run parameters threaded through the generic drivers.
struct Drive<'a> {
    len: RunLength,
    fork: Fork,
    faults: FaultPlan,
    seed_bug: bool,
    checkpoint: Option<String>,
    cancel: &'a CancelFlag,
    chunk: u64,
    /// Wall-clock budget: the instant the run started driving and the
    /// number of milliseconds it may take, when a deadline is armed.
    deadline: Option<(std::time::Instant, u64)>,
    progress: &'a mut dyn FnMut(u64, u64),
}

impl Drive<'_> {
    /// Kernel-backed sources: validated when checked, oracle attachable,
    /// snapshot-forkable.
    fn kernel(
        self,
        cfg: SimConfig,
        spec: KernelSpec,
        check: bool,
        trace: TraceReq,
    ) -> Result<RunOutcome, SimError> {
        let checker = if check {
            spec.validate().map_err(SimError::ConfigInvalid)?;
            Some(DiffChecker::new(Box::new(InOrderModel::from_spec(
                spec.clone(),
            ))))
        } else {
            None
        };
        self.sink_dispatch(cfg, KernelTrace::new(spec), checker, trace)
    }

    /// Monomorphizes the sink: the no-trace path keeps the zero-cost
    /// `NullSink`, tracing runs pay for exactly what they capture.
    fn sink_dispatch<T: TraceSource + PersistState>(
        self,
        cfg: SimConfig,
        src: T,
        checker: Option<DiffChecker>,
        trace: TraceReq,
    ) -> Result<RunOutcome, SimError> {
        match RunSink::for_req(&trace) {
            None => self.run(Simulator::new(cfg, src), checker),
            Some(sink) => self.run(Simulator::with_sink(cfg, src, sink), checker),
        }
    }

    /// Same dispatch for non-persistent sources (fresh forks only,
    /// enforced by the caller).
    fn plain_sink_dispatch<T: TraceSource>(
        self,
        cfg: SimConfig,
        src: T,
        trace: TraceReq,
    ) -> Result<RunOutcome, SimError> {
        match RunSink::for_req(&trace) {
            None => self.run_fresh(Simulator::new(cfg, src), None),
            Some(sink) => self.run_fresh(Simulator::with_sink(cfg, src, sink), None),
        }
    }

    fn prepare<T: TraceSource, S: TraceSink>(
        &self,
        sim: &mut Simulator<T, S>,
        checker: Option<DiffChecker>,
    ) -> Result<(), SimError> {
        if let Some(ck) = checker {
            sim.attach_diff_checker(ck);
        }
        if self.faults != FaultPlan::new() {
            sim.set_fault_plan(self.faults.clone())?;
        }
        if self.seed_bug {
            sim.seed_wakeup_bug();
        }
        Ok(())
    }

    /// Fork-capable driver (persistent sources).
    fn run<T: TraceSource + PersistState, S: TraceSink + Sink>(
        mut self,
        mut sim: Simulator<T, S>,
        checker: Option<DiffChecker>,
    ) -> Result<RunOutcome, SimError> {
        match std::mem::replace(&mut self.fork, Fork::Fresh) {
            Fork::Fresh => self.run_fresh(sim, checker),
            Fork::Capture => {
                self.prepare(&mut sim, checker)?;
                let total = self.len.warmup + self.len.measure;
                let warm = self.run_chunked(&mut sim, self.len.warmup, 0, total)?;
                let snapshot = sim.capture();
                let end = self.run_chunked(&mut sim, self.len.measure, self.len.warmup, total)?;
                Ok(RunOutcome {
                    stats: end.delta(&warm),
                    snapshot: Some(snapshot),
                    trace: sim.into_sink().into_events(),
                })
            }
            Fork::Snapshot(snap) => {
                self.prepare(&mut sim, checker)?;
                sim.restore(&snap)?;
                if let Some(cp) = self.checkpoint.take() {
                    sim.set_checkpoint_note(cp);
                }
                let warm = sim.stats();
                let end = self.run_chunked(&mut sim, self.len.measure, 0, self.len.measure)?;
                Ok(RunOutcome {
                    stats: end.delta(&warm),
                    snapshot: None,
                    trace: sim.into_sink().into_events(),
                })
            }
            Fork::Path(_) => unreachable!("paths resolve to snapshots in execute_observed"),
        }
    }

    /// Cold-start driver (any source).
    fn run_fresh<T: TraceSource, S: TraceSink + Sink>(
        mut self,
        mut sim: Simulator<T, S>,
        checker: Option<DiffChecker>,
    ) -> Result<RunOutcome, SimError> {
        self.prepare(&mut sim, checker)?;
        let total = self.len.warmup + self.len.measure;
        let warm = self.run_chunked(&mut sim, self.len.warmup, 0, total)?;
        let end = self.run_chunked(&mut sim, self.len.measure, self.len.warmup, total)?;
        Ok(RunOutcome {
            stats: end.delta(&warm),
            snapshot: None,
            trace: sim.into_sink().into_events(),
        })
    }

    /// Runs `n` more committed µ-ops in cancellable slices. Targets are
    /// absolute commit counts, so slicing is bit-identical to one call.
    fn run_chunked<T: TraceSource, S: TraceSink>(
        &mut self,
        sim: &mut Simulator<T, S>,
        n: u64,
        base: u64,
        total: u64,
    ) -> Result<SimStats, SimError> {
        let start = sim.stats().committed_uops;
        let target = start + n;
        loop {
            let committed = sim.stats().committed_uops;
            let done = committed.saturating_sub(start).min(n);
            if self.cancel.is_cancelled() {
                return Err(SimError::Cancelled {
                    committed: base + done,
                });
            }
            if let Some((started, budget_ms)) = self.deadline {
                if started.elapsed().as_millis() as u64 >= budget_ms {
                    return Err(SimError::DeadlineExceeded {
                        committed: base + done,
                        budget_ms,
                    });
                }
            }
            if committed >= target {
                return Ok(sim.stats());
            }
            let step = self.chunk.min(target - committed);
            sim.try_run_committed(step)?;
            let done = (sim.stats().committed_uops - start).min(n);
            (self.progress)(base + done, total);
        }
    }
}

/// Sink finalization: hand back whatever events were kept.
trait Sink {
    fn into_events(self) -> Vec<TraceEvent>;
}

impl Sink for ss_types::NullSink {
    fn into_events(self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// The runner's own capture sink: a bounded ring or a µ-op sequence
/// window, selected at run time (the simulator stays monomorphized over
/// one traced sink type).
#[derive(Debug)]
enum RunSink {
    Ring {
        buf: VecDeque<TraceEvent>,
        capacity: usize,
    },
    Window {
        events: Vec<TraceEvent>,
        lo: u64,
        hi: u64,
    },
}

impl RunSink {
    fn for_req(req: &TraceReq) -> Option<RunSink> {
        match *req {
            TraceReq::Off => None,
            TraceReq::Ring(capacity) => Some(RunSink::Ring {
                buf: VecDeque::with_capacity(capacity),
                capacity,
            }),
            TraceReq::Window(lo, hi) => Some(RunSink::Window {
                events: Vec::new(),
                lo,
                hi,
            }),
        }
    }
}

impl TraceSink for RunSink {
    fn record(&mut self, ev: TraceEvent) {
        match self {
            RunSink::Ring { buf, capacity } => {
                if buf.len() == *capacity {
                    buf.pop_front();
                }
                buf.push_back(ev);
            }
            RunSink::Window { events, lo, hi } => {
                // Occupancy samples carry no sequence number and always
                // pass (same contract as the harness capture sink).
                let wanted = match ev.seq() {
                    Some(seq) => (*lo..*hi).contains(&seq.get()),
                    None => true,
                };
                if wanted {
                    events.push(ev);
                }
            }
        }
    }

    fn recent(&self) -> Vec<TraceEvent> {
        match self {
            RunSink::Ring { buf, .. } => buf.iter().copied().collect(),
            RunSink::Window { events, .. } => events.clone(),
        }
    }
}

impl Sink for RunSink {
    fn into_events(self) -> Vec<TraceEvent> {
        match self {
            RunSink::Ring { buf, .. } => buf.into_iter().collect(),
            RunSink::Window { events, .. } => events,
        }
    }
}

// ---------------------------------------------------------------------
// Canonical text encoding: `src=... cfg=... len=... [deadline=ms]
// [fork=] [check=1] [trace=] [faults=] [bug=1] [note=]`. Display
// renders tokens in that fixed order; FromStr accepts any order and
// rejects duplicates, unknown keys, and the `<...>` markers of
// library-only requests.
// ---------------------------------------------------------------------

impl fmt::Display for RunRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src={} cfg={}", self.source_token(), self.config_token())?;
        match self.len {
            Some(len) => write!(f, " len={len}")?,
            None => write!(f, " len=<unset>")?,
        }
        if let Some(ms) = self.deadline_ms {
            write!(f, " deadline={ms}")?;
        }
        match &self.fork {
            Fork::Fresh => {}
            Fork::Capture => write!(f, " fork=capture")?,
            Fork::Snapshot(_) => write!(f, " fork=<snapshot>")?,
            Fork::Path(p) => write!(f, " fork=snap:{p}")?,
        }
        if self.check {
            write!(f, " check=1")?;
        }
        match self.trace {
            TraceReq::Off => {}
            TraceReq::Ring(cap) => write!(f, " trace=ring:{cap}")?,
            TraceReq::Window(lo, hi) => write!(f, " trace=win:{lo}..{hi}")?,
        }
        if self.faults != FaultPlan::new() {
            write!(f, " faults={}", self.faults)?;
        }
        if self.seed_bug {
            write!(f, " bug=1")?;
        }
        if let Some(note) = &self.checkpoint {
            write!(f, " note={note}")?;
        }
        Ok(())
    }
}

/// Parses `0x`-prefixed hex or decimal.
fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

impl FromStr for RunRequest {
    type Err = ParseRequestError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason: String| ParseRequestError {
            input: s.to_string(),
            reason,
            library_only: None,
        };
        let mut src: Option<Source> = None;
        let mut cfg: Option<ConfigSpec> = None;
        let mut len: Option<RunLength> = None;
        let mut deadline: Option<u64> = None;
        let mut fork: Option<Fork> = None;
        let mut check = false;
        let mut trace: Option<TraceReq> = None;
        let mut faults: Option<FaultPlan> = None;
        let mut bug = false;
        let mut note: Option<String> = None;
        let mut seen = std::collections::HashSet::new();
        for token in s.split_whitespace() {
            let (key, val) = token
                .split_once('=')
                .ok_or_else(|| err(format!("token `{token}` is not `key=value`")))?;
            if !seen.insert(key.to_string()) {
                return Err(err(format!("duplicate key `{key}`")));
            }
            // Library-only `<…>` markers (how Display renders requests
            // that cannot travel: custom configs, in-memory specs and
            // snapshots, arbitrary trace sources, unset lengths) are a
            // distinct, typed failure: the caller pasted a rendered
            // request whose capability has no wire form.
            if val.starts_with('<') {
                return Err(ParseRequestError {
                    input: s.to_string(),
                    reason: format!(
                        "`{key}={val}`: `{val}` is a library-only marker, not an encodable value"
                    ),
                    library_only: Some(val.to_string()),
                });
            }
            match key {
                "src" => {
                    let parsed = if let Some(rest) = val.strip_prefix("bench:") {
                        let (name, seed) = rest.split_once('@').ok_or_else(|| {
                            err(format!("src `{val}`: expected `bench:{{name}}@{{seed}}`"))
                        })?;
                        Source::Bench {
                            name: name.to_string(),
                            seed: parse_u64(seed)
                                .ok_or_else(|| err(format!("src `{val}`: bad seed")))?,
                        }
                    } else if let Some(seed) = val.strip_prefix("gen:") {
                        Source::Gen {
                            seed: parse_u64(seed)
                                .ok_or_else(|| err(format!("src `{val}`: bad seed")))?,
                        }
                    } else if val.starts_with("rv:") {
                        Source::Rv(
                            val.parse::<ProgramSpec>()
                                .map_err(|e| err(format!("src `{val}`: {e}")))?,
                        )
                    } else {
                        return Err(err(format!(
                            "src `{val}`: expected `bench:{{name}}@{{seed}}`, `gen:{{seed}}`, \
                             or `rv:…`"
                        )));
                    };
                    src = Some(parsed);
                }
                "cfg" => {
                    cfg = Some(val.parse::<ConfigSpec>().map_err(|e| err(e.to_string()))?);
                }
                "len" => {
                    len = Some(val.parse::<RunLength>().map_err(&err)?);
                }
                "deadline" => {
                    let ms = parse_u64(val)
                        .ok_or_else(|| err(format!("deadline `{val}`: bad millisecond count")))?;
                    if ms == 0 {
                        return Err(err("deadline `0`: must be ≥ 1 ms".to_string()));
                    }
                    deadline = Some(ms);
                }
                "fork" => {
                    fork = Some(if val == "capture" {
                        Fork::Capture
                    } else if let Some(path) = val.strip_prefix("snap:") {
                        if path.is_empty() {
                            return Err(err("fork `snap:`: empty path".to_string()));
                        }
                        Fork::Path(path.to_string())
                    } else {
                        return Err(err(format!(
                            "fork `{val}`: expected `capture` or `snap:{{path}}`"
                        )));
                    });
                }
                "check" => match val {
                    "1" => check = true,
                    _ => return Err(err(format!("check `{val}`: expected `1`"))),
                },
                "trace" => {
                    trace = Some(if let Some(cap) = val.strip_prefix("ring:") {
                        TraceReq::Ring(
                            cap.parse::<usize>()
                                .ok()
                                .filter(|&c| c > 0)
                                .ok_or_else(|| err(format!("trace `{val}`: bad capacity")))?,
                        )
                    } else if let Some(win) = val.strip_prefix("win:") {
                        let (lo, hi) = win
                            .split_once("..")
                            .and_then(|(l, h)| Some((parse_u64(l)?, parse_u64(h)?)))
                            .ok_or_else(|| {
                                err(format!("trace `{val}`: expected `win:{{lo}}..{{hi}}`"))
                            })?;
                        TraceReq::Window(lo, hi)
                    } else {
                        return Err(err(format!(
                            "trace `{val}`: expected `ring:{{cap}}` or `win:{{lo}}..{{hi}}`"
                        )));
                    });
                }
                "faults" => {
                    faults = Some(
                        val.parse::<FaultPlan>()
                            .map_err(|e| err(format!("faults `{val}`: {e}")))?,
                    );
                }
                "bug" => match val {
                    "1" => bug = true,
                    _ => return Err(err(format!("bug `{val}`: expected `1`"))),
                },
                "note" => note = Some(val.to_string()),
                other => return Err(err(format!("unknown key `{other}`"))),
            }
        }
        let src = src.ok_or_else(|| err("missing `src=`".to_string()))?;
        let cfg = cfg.ok_or_else(|| err("missing `cfg=`".to_string()))?;
        let len = len.ok_or_else(|| err("missing `len=`".to_string()))?;
        Ok(RunRequest {
            source: src,
            config: Config::Spec(cfg),
            len: Some(len),
            deadline_ms: deadline,
            check,
            fork: fork.unwrap_or(Fork::Fresh),
            trace: trace.unwrap_or(TraceReq::Off),
            faults: faults.unwrap_or_default(),
            seed_bug: bug,
            checkpoint: note,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::SchedPolicyKind;
    use ss_workloads::kernels;

    #[test]
    fn smoke_run_produces_sane_stats() {
        let cfg = SimConfig::builder()
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .build();
        let s = RunRequest::kernel(kernels::fp_compute(1))
            .custom_config(cfg)
            .length(RunLength::SMOKE)
            .execute()
            .unwrap()
            .stats;
        // run_committed stops at the first commit boundary past the target
        assert!(s.committed_uops >= 30_000 && s.committed_uops < 30_000 + 8);
        assert!(s.cycles > 0);
        let ipc = s.ipc();
        assert!(ipc > 0.1 && ipc < 8.0, "implausible IPC {ipc}");
    }

    #[test]
    fn warm_restore_run_is_stat_identical_to_fresh_run() {
        let cfg = SimConfig::builder().build();
        let len = RunLength {
            warmup: 2_000,
            measure: 8_000,
        };
        let fresh = RunRequest::kernel(kernels::mix_int(3))
            .custom_config(cfg.clone())
            .length(len)
            .execute()
            .unwrap()
            .stats;
        let snap = RunRequest::kernel(kernels::mix_int(3))
            .custom_config(cfg.clone())
            .length(RunLength {
                warmup: len.warmup,
                measure: 0,
            })
            .capture_warm()
            .execute()
            .unwrap()
            .snapshot
            .unwrap();
        let warm = RunRequest::kernel(kernels::mix_int(3))
            .custom_config(cfg)
            .length(RunLength {
                warmup: 0,
                measure: len.measure,
            })
            .from_snapshot(snap)
            .checkpoint_note("warm/test.snap")
            .execute()
            .unwrap()
            .stats;
        assert_eq!(fresh, warm, "restored run must be bit-identical");
    }

    #[test]
    fn checked_run_matches_unchecked_stats() {
        let cfg = SimConfig::builder()
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .commit_log_window(32)
            .build();
        let len = RunLength {
            warmup: 1_000,
            measure: 5_000,
        };
        let base = RunRequest::kernel(kernels::mix_int(2))
            .custom_config(cfg.clone())
            .length(len);
        let plain = base.execute().unwrap().stats;
        let checked = RunRequest::kernel(kernels::mix_int(2))
            .custom_config(cfg)
            .length(len)
            .checked(true)
            .execute()
            .unwrap()
            .stats;
        assert_eq!(plain.committed_uops, checked.committed_uops);
        assert_eq!(
            plain.cycles, checked.cycles,
            "checker must not perturb timing"
        );
    }

    #[test]
    fn chunked_execution_is_bit_identical_and_reports_progress() {
        let cfg = SimConfig::builder().build();
        let len = RunLength {
            warmup: 1_000,
            measure: 6_000,
        };
        let one_shot = RunRequest::kernel(kernels::mix_int(5))
            .custom_config(cfg.clone())
            .length(len)
            .execute()
            .unwrap()
            .stats;
        let mut reports = Vec::new();
        let chunked = RunRequest::kernel(kernels::mix_int(5))
            .custom_config(cfg)
            .length(len)
            .execute_observed(&CancelFlag::new(), 500, |done, total| {
                reports.push((done, total))
            })
            .unwrap()
            .stats;
        assert_eq!(one_shot, chunked, "chunking must leave no trace in stats");
        assert!(reports.len() >= 14, "expected ~14 chunks, saw {reports:?}");
        assert!(reports.iter().all(|&(_, t)| t == 7_000));
        assert_eq!(reports.last().unwrap().0, 7_000);
        let dones: Vec<u64> = reports.iter().map(|r| r.0).collect();
        assert!(dones.windows(2).all(|w| w[0] < w[1]), "monotone progress");
    }

    #[test]
    fn cancellation_stops_a_running_cell_with_typed_error() {
        let cfg = SimConfig::builder().build();
        let cancel = CancelFlag::new();
        let err = RunRequest::kernel(kernels::mix_int(5))
            .custom_config(cfg)
            .length(RunLength {
                warmup: 1_000,
                measure: 1_000_000,
            })
            .execute_observed(&cancel, 500, |done, _| {
                if done >= 2_000 {
                    cancel.cancel();
                }
            })
            .unwrap_err();
        match err {
            SimError::Cancelled { committed } => {
                assert!(
                    (2_000..10_000).contains(&committed),
                    "cancel took effect at the next chunk boundary, got {committed}"
                );
            }
            other => panic!("expected Cancelled, got {other}"),
        }
    }

    #[test]
    fn deadline_ends_a_long_run_with_committed_evidence() {
        let cfg = SimConfig::builder().build();
        let err = RunRequest::kernel(kernels::mix_int(5))
            .custom_config(cfg)
            .length(RunLength {
                warmup: 1_000,
                // Far more work than 1 ms of wall clock can commit.
                measure: u64::MAX / 2,
            })
            .deadline_ms(1)
            .execute()
            .unwrap_err();
        match err {
            SimError::DeadlineExceeded {
                committed,
                budget_ms,
            } => {
                assert_eq!(budget_ms, 1);
                assert!(
                    committed < u64::MAX / 4,
                    "a 1 ms budget cannot have finished the run, got {committed}"
                );
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
    }

    #[test]
    fn generous_deadline_leaves_stats_untouched() {
        let cfg = SimConfig::builder().build();
        let len = RunLength {
            warmup: 1_000,
            measure: 6_000,
        };
        let plain = RunRequest::kernel(kernels::mix_int(5))
            .custom_config(cfg.clone())
            .length(len)
            .execute()
            .unwrap()
            .stats;
        let bounded = RunRequest::kernel(kernels::mix_int(5))
            .custom_config(cfg)
            .length(len)
            .deadline_ms(600_000)
            .execute()
            .unwrap()
            .stats;
        assert_eq!(plain, bounded, "an unhit deadline must leave no trace");
    }

    #[test]
    fn deadline_wire_round_trips_and_rejects_zero() {
        let req = RunRequest::bench("fp_compute", 0xb5)
            .config("Baseline_4".parse().unwrap())
            .length(RunLength {
                warmup: 1_000,
                measure: 5_000,
            })
            .deadline_ms(2_500);
        let line = req.to_string();
        assert_eq!(
            line,
            "src=bench:fp_compute@0xb5 cfg=Baseline_4 len=w1000m5000 deadline=2500"
        );
        assert_eq!(line.parse::<RunRequest>().as_ref(), Ok(&req));
        let err = "src=gen:0x1 cfg=Baseline_4 len=w10m100 deadline=0"
            .parse::<RunRequest>()
            .unwrap_err();
        assert!(err.reason.contains("≥ 1 ms"), "{err}");
    }

    #[test]
    fn execute_requires_a_length() {
        let err = RunRequest::kernel(kernels::mix_int(1))
            .execute()
            .unwrap_err();
        assert!(matches!(err, SimError::ConfigInvalid(_)), "{err}");
    }

    #[test]
    fn checked_trace_source_is_rejected() {
        let err = RunRequest::trace_source(KernelTrace::new(kernels::mix_int(1)))
            .length(RunLength::SMOKE)
            .checked(true)
            .execute()
            .unwrap_err();
        assert!(err.to_string().contains("kernel-backed"), "{err}");
    }

    #[test]
    fn wire_encoding_round_trips_and_rejects_library_only() {
        let req = RunRequest::bench("fp_compute", 0xb5)
            .config("SpecSched_4_Crit".parse().unwrap())
            .length(RunLength {
                warmup: 1_000,
                measure: 5_000,
            })
            .checked(true)
            .faults(FaultPlan::new().latency_spike(200, 50, 8))
            .ring_trace(256);
        let line = req.to_string();
        assert_eq!(
            line,
            "src=bench:fp_compute@0xb5 cfg=SpecSched_4_Crit len=w1000m5000 check=1 \
             trace=ring:256 faults=spike@200x50+8"
        );
        assert_eq!(line.parse::<RunRequest>().as_ref(), Ok(&req));

        let library_only = RunRequest::kernel(kernels::mix_int(1))
            .custom_config(SimConfig::default())
            .length(RunLength::SMOKE);
        let line = library_only.to_string();
        assert!(line.contains("<spec:") && line.contains("<custom>"));
        assert!(line.parse::<RunRequest>().is_err());
    }

    #[test]
    fn library_only_markers_are_typed_and_convert_to_config_invalid() {
        let line = RunRequest::kernel(kernels::mix_int(1))
            .custom_config(SimConfig::default())
            .length(RunLength::SMOKE)
            .to_string();
        let err = line.parse::<RunRequest>().unwrap_err();
        assert_eq!(err.library_only.as_deref(), Some("<spec:mix_int>"));
        let sim_err = SimError::from(err);
        match sim_err {
            SimError::ConfigInvalid(msg) => {
                assert!(msg.contains("<spec:mix_int>"), "{msg}");
                assert!(msg.contains("library-only"), "{msg}");
            }
            other => panic!("expected ConfigInvalid, got {other}"),
        }
        // Ordinary syntax errors carry no marker.
        let err = "src=gen:zz cfg=Baseline_4 len=w1m2"
            .parse::<RunRequest>()
            .unwrap_err();
        assert_eq!(err.library_only, None);
    }

    #[test]
    fn rv_source_round_trips_the_wire_and_executes() {
        let req = RunRequest::program(ProgramSpec::suite("sort", 0xb5))
            .config("SpecSched_4".parse().unwrap())
            .length(RunLength {
                warmup: 1_000,
                measure: 8_000,
            })
            .checked(true);
        let line = req.to_string();
        assert_eq!(
            line,
            "src=rv:sort@0xb5 cfg=SpecSched_4 len=w1000m8000 check=1"
        );
        let parsed: RunRequest = line.parse().unwrap();
        assert_eq!(parsed, req);
        let stats = parsed.execute().unwrap().stats;
        assert!(stats.committed_uops >= 8_000 && stats.committed_uops < 8_000 + 8);
        assert!(stats.ipc() > 0.1 && stats.ipc() < 8.0);
    }

    #[test]
    fn rv_unknown_program_is_config_invalid() {
        let err = "src=rv:nope@0x1 cfg=Baseline_4 len=w100m1000"
            .parse::<RunRequest>()
            .unwrap()
            .execute()
            .unwrap_err();
        match err {
            SimError::ConfigInvalid(msg) => assert!(msg.contains("nope"), "{msg}"),
            other => panic!("expected ConfigInvalid, got {other}"),
        }
    }
}
