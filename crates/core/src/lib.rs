//! The cycle-level out-of-order pipeline simulator — the machine on which
//! the paper's speculative-scheduling study runs.
//!
//! The model reproduces Table 1 of Perais et al. (ISCA 2015): an 8-wide
//! frontend / 6-issue superscalar with a 192-entry ROB, a unified
//! 60-entry issue queue, 72/48-entry load/store queues, 256+256 physical
//! registers, TAGE + BTB + RAS, Store Sets, a banked L1D behind a
//! conflict-queue arbiter, an L2 with a stride prefetcher, and a DDR3
//! memory channel. The issue-to-execute delay is configurable (the
//! paper's sweep: 0, 2, 4, 6), the frontend shrinking to keep the branch
//! misprediction penalty constant.
//!
//! Speculative scheduling, the replay mechanism (Alpha-21264-style squash
//! with a Morancho-style recovery buffer), Schedule Shifting, and the
//! hit/miss / criticality wakeup policies are all driven from here.
//!
//! # Example
//!
//! Every way to run the machine goes through one builder,
//! [`RunRequest`]:
//!
//! ```
//! use ss_core::{RunLength, RunRequest};
//! use ss_types::{SchedPolicyKind, SimConfig};
//! use ss_workloads::kernels;
//!
//! let cfg = SimConfig::builder()
//!     .issue_to_execute_delay(4)
//!     .sched_policy(SchedPolicyKind::AlwaysHit)
//!     .build();
//! let outcome = RunRequest::kernel(kernels::fp_compute(1))
//!     .custom_config(cfg)
//!     .length(RunLength::SMOKE)
//!     .execute()
//!     .unwrap();
//! assert!(outcome.stats.ipc() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library code must surface failures as `SimError`, never `unwrap()`.
// The remaining `expect()` sites in `pipeline.rs` assert internal
// invariants that `FetchedUop::validate` guarantees at the fetch
// boundary (malformed traces become `SimError::TraceInvalid` there).
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod diff;
pub mod fault;
pub mod lane;
pub mod pipeline;
pub mod rename;
pub mod runner;
pub mod schedq;
pub mod window;

pub use diff::DiffChecker;
pub use fault::{FaultKind, FaultPlan, FaultWindow};
pub use lane::{default_lanes, run_lane_batch, validate_lanes, LaneCell, LaneStream, SharedStream, MAX_LANES};
pub use pipeline::{config_fingerprint, load_snapshot, sections, PipelineSnapshot, Simulator};
pub use rename::{PhysRef, RenameUnit};
pub use runner::{ParseRequestError, RunLength, RunOutcome, RunRequest, RunSource};
pub use schedq::SchedQueue;
pub use ss_types::trace::{NullSink, TraceEvent, TraceSink};
pub use window::{FetchedUop, RobEntry, UopState};
