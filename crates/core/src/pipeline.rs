//! The cycle-level out-of-order pipeline with speculative scheduling and
//! Alpha-21264-style replay.
//!
//! Stage order within [`Simulator::tick`] (one call = one cycle):
//!
//! 1. **Commit** — retire up to 8 completed µ-ops from the ROB head;
//!    train the branch predictor, hit/miss filter, and criticality table.
//! 2. **Execute** — the issue group from `now − delay − 1` reaches the
//!    execution stage. Every µ-op verifies its operands against the
//!    physical-register scoreboard; a missing operand is a *schedule
//!    misspeculation*: all µ-ops in flight between Issue and Execute are
//!    squashed into the recovery buffer (or back to their retained IQ
//!    entries for loads/stores) and one issue cycle is lost (§3.1).
//! 3. **Issue** — the recovery buffer's head group has priority; the
//!    scheduler fills the holes (Morancho-style). Up to 6 µ-ops across
//!    the Table 1 port mix; loads consult the wakeup-policy engine and
//!    (optionally) Schedule Shifting decides the wakeup of the second
//!    load of the group.
//! 4. **Dispatch** — rename and insert into ROB/IQ/LSQ.
//! 5. **Fetch** — up to 8 µ-ops from two 16-byte blocks over at most one
//!    taken branch; wrong-path µ-ops are synthesized past a mispredicted
//!    branch until it resolves.

use crate::diff::DiffChecker;
use crate::fault::FaultPlan;
use crate::rename::{PhysRef, RenameUnit};
use crate::schedq::SchedQueue;
use crate::window::{FetchedUop, RobEntry, UopState};
use ss_bpred::BranchPredictor;
use ss_isa::MicroOp;
use ss_mem::{MemLevel, MemoryHierarchy};
use ss_memdep::StoreSets;
use ss_sched::{BankPredictor, SchedEngine, WakeupDecision};
use ss_types::commit::CommitRecord;
use ss_types::persist::{DecodeError, Persist, PersistState, Reader, Writer};
use ss_types::trace::{NullSink, TraceEvent, TraceSink};
use ss_types::{
    BankInterleaving, CritCriterion, Cycle, DeadlockReport, DivergenceReport, InvariantReport,
    OpClass, ReplayCause, ReplayScheme, SeqBitmap, SeqNum, ShiftPolicy, SimConfig, SimError,
    SimStats, VecPool,
};
use ss_workloads::{TraceSource, WrongPathGen};
use std::collections::VecDeque;

pub use ss_types::PipelineSnapshot;

/// How the issue stage treats the recovery buffer this cycle.
#[derive(Clone, Copy, PartialEq)]
enum RecoveryScan {
    /// Proven empty of selectable members — skip the candidate walk.
    /// Only the gated stepper can prove this (via its cached horizon).
    Skip,
    /// Walk and select (reference behavior, every cycle).
    Scan,
    /// Walk, select, and record the buffer's next readiness horizon for
    /// the gated stepper's cache.
    ScanTracked,
}

/// Per-cycle issue-stage context shared by the replay and scheduler
/// selection loops (drives Schedule Shifting decisions).
#[derive(Debug, Default)]
struct IssueCycleState {
    loads_issued: u32,
    /// Predicted bank of the first load issued this cycle (only tracked
    /// under [`ShiftPolicy::Predicted`]).
    first_load_bank: Option<u8>,
    /// PRF reads per (register class, bank) this cycle (banked-PRF model).
    prf_reads: [[u8; 16]; 2],
}

/// The simulator: one out-of-order core running one trace.
///
/// Generic over a [`TraceSink`] so observability is a compile-time
/// strategy: the default [`NullSink`] advertises `ENABLED = false` and
/// every instrumentation site monomorphizes away — an untraced
/// `Simulator<T>` is bit-for-bit the machine it was before tracing
/// existed. Construct with [`Simulator::with_sink`] to capture events.
pub struct Simulator<T, S: TraceSink = NullSink> {
    cfg: SimConfig,
    delay: u64,
    trace: T,
    wp_gen: WrongPathGen,
    bpred: BranchPredictor,
    mem: MemoryHierarchy,
    store_sets: StoreSets,
    engine: SchedEngine,
    bank_pred: BankPredictor,
    rename: RenameUnit,

    rob: VecDeque<RobEntry>,
    frontend: VecDeque<FetchedUop>,
    frontend_cap: usize,
    /// Issue groups in the issue-to-execute pipe, keyed by issue cycle.
    inflight: VecDeque<(Cycle, Vec<SeqNum>)>,
    /// Replay groups, keyed by original issue cycle (head group replays
    /// first; the scheduler fills holes).
    recovery: VecDeque<(Cycle, Vec<SeqNum>)>,

    iq_used: u32,
    lq_used: u32,
    sq_used: u32,
    /// Reusable per-cycle scratch for the issue stage (avoids two heap
    /// allocations per simulated cycle on the hot path).
    scratch_candidates: Vec<SeqNum>,
    /// Event-driven scheduler state: the incrementally-maintained ready
    /// set the IQ selection phase iterates instead of scanning the ROB.
    /// Untouched (empty) when `legacy_scan` is set.
    sched: SchedQueue,
    /// Cached `cfg.legacy_scan`: use the O(ROB) per-cycle scan instead of
    /// the event-driven ready queue.
    legacy_scan: bool,
    /// Recycled `Vec<SeqNum>` buffers for issue/recovery groups — the
    /// steady-state hot loop allocates nothing.
    group_pool: VecPool<SeqNum>,
    /// Scratch for draining rename watcher wakeups (reused each cycle).
    scratch_woken: Vec<(SeqNum, u32)>,
    /// Scratch seq list for squash walks (reused per event).
    scratch_squash: Vec<SeqNum>,
    /// Scratch bitset marking µ-ops replayed from the recovery buffer
    /// this cycle (O(1) membership for the group cleanup).
    replayed_marks: SeqBitmap,
    /// In-flight correct-path stores with a known address, in program
    /// order: `(quadword, seq)`. The memory-order check walks this
    /// (bounded by the store queue) instead of the whole ROB per load.
    store_ring: VecDeque<(u64, SeqNum)>,
    muldiv_free: Cycle,
    fpdiv_free: [Cycle; 2],

    now: Cycle,
    next_seq: SeqNum,
    /// Issue is suppressed for this cycle (replay handled this cycle).
    issue_blocked_at: Option<Cycle>,
    /// Fetching synthesized wrong-path µ-ops.
    wrong_path_mode: bool,
    /// Next correct-path µ-op (lookahead buffer over the trace).
    pending_correct: Option<MicroOp>,
    fetch_stall_until: Cycle,
    last_commit_at: Cycle,
    /// Wake revisions that take effect when the hit/miss *signal* exists
    /// (one cycle before data return — paper footnote 2). Revising at the
    /// load's execute would let the scheduler cancel doomed wakeups the
    /// hardware could not have known about yet, erasing the replays the
    /// paper observes at small issue-to-execute delays.
    deferred_wakes: Vec<(Cycle, PhysRef, Cycle)>,
    /// Ring of recent correct-path load addresses; wrong-path loads probe
    /// near these (real wrong paths touch the program's own data, so they
    /// mostly hit — probing a disjoint region would fabricate misses and
    /// inflate wrong-path-induced replays).
    recent_load_addrs: [ss_types::Addr; 64],
    recent_load_idx: usize,
    wp_rng: u64,

    /// Injected-fault schedule (robustness testing), if any.
    fault_plan: Option<FaultPlan>,
    /// Graceful degradation: conservative-wakeup fallback active until
    /// this cycle (replay-storm response; `Cycle::ZERO` = not degraded).
    degrade_until: Cycle,
    degrade_window_start: Cycle,
    degrade_window_replays: u64,
    /// A structured error detected mid-tick (e.g. a malformed µ-op at the
    /// fetch boundary), surfaced by [`Simulator::try_run_committed`].
    pending_error: Option<SimError>,

    /// Gated-stepper cache (lane engine, [`Simulator::try_run_committed_ff`]):
    /// the earliest cycle a recovery-buffer member becomes selectable.
    /// Pure scratch — reconstructible, never persisted in snapshots.
    recovery_ready_at: Cycle,
    /// Whether a stage that can move wake times or recovery membership
    /// ran since `recovery_ready_at` was computed.
    step_dirty: bool,
    /// The cycle the gated stepper last maintained its cache at; a
    /// mismatch means cycles ran outside the stepper (plain `tick`, or a
    /// snapshot restore) and the cache must be rebuilt.
    step_stamp: Cycle,

    /// Bounded ring of the last `commit_log_window` committed µ-ops (the
    /// canonical commit log; O(window) memory regardless of run length).
    commit_ring: VecDeque<CommitRecord>,
    /// Online differential checker against a golden model, if attached.
    diff: Option<DiffChecker>,
    /// Test-only seeded bug: when armed, the next replay "loses" one
    /// correct-path µ-op (see [`Simulator::seed_wakeup_bug`]).
    wakeup_bug_armed: bool,
    wakeup_bug_fired: bool,

    /// Path of the nearest checkpoint this run was captured to or
    /// restored from, attached to failure reports so a crash can be
    /// reproduced from warm state instead of a cold replay.
    checkpoint_note: Option<String>,

    /// The observability sink every stage reports into (see
    /// [`ss_types::trace`]).
    sink: S,

    stats: SimStats,
    /// Memory-order violations (Store Sets training events).
    pub memdep_violations: u64,
}

impl<T: TraceSource> Simulator<T> {
    /// Builds an untraced simulator for `cfg` running `trace` (the
    /// [`NullSink`] compiles all instrumentation out).
    pub fn new(cfg: SimConfig, trace: T) -> Self {
        Self::with_sink(cfg, trace, NullSink)
    }
}

impl<T: TraceSource, S: TraceSink> Simulator<T, S> {
    /// Builds a simulator for `cfg` running `trace`, reporting every
    /// pipeline event into `sink`.
    pub fn with_sink(cfg: SimConfig, trace: T, sink: S) -> Self {
        cfg.validate();
        let delay = cfg.issue_to_execute_delay;
        let frontend_cap = (cfg.frontend_width as u64 * (cfg.frontend_depth() + 2)) as usize;
        Simulator {
            delay,
            bpred: BranchPredictor::new(&cfg.predictor),
            mem: MemoryHierarchy::new(&cfg),
            store_sets: StoreSets::new(1024, 131_072),
            engine: SchedEngine::new(&cfg),
            bank_pred: BankPredictor::new(cfg.bank_predictor_entries),
            rename: RenameUnit::new(cfg.int_prf, cfg.fp_prf),
            rob: VecDeque::with_capacity(cfg.rob_entries as usize),
            frontend: VecDeque::with_capacity(frontend_cap),
            frontend_cap,
            inflight: VecDeque::new(),
            recovery: VecDeque::new(),
            iq_used: 0,
            lq_used: 0,
            sq_used: 0,
            scratch_candidates: Vec::with_capacity(256),
            sched: SchedQueue::new(cfg.rob_entries as usize),
            legacy_scan: cfg.legacy_scan,
            group_pool: VecPool::new(),
            scratch_woken: Vec::new(),
            scratch_squash: Vec::new(),
            replayed_marks: SeqBitmap::new(cfg.rob_entries as usize),
            store_ring: VecDeque::with_capacity(cfg.sq_entries as usize + 1),
            muldiv_free: Cycle::ZERO,
            fpdiv_free: [Cycle::ZERO; 2],
            now: Cycle::ZERO,
            next_seq: SeqNum::FIRST,
            issue_blocked_at: None,
            wrong_path_mode: false,
            pending_correct: None,
            fetch_stall_until: Cycle::ZERO,
            last_commit_at: Cycle::ZERO,
            deferred_wakes: Vec::new(),
            recent_load_addrs: [ss_types::Addr::new(0x1_0000_0000); 64],
            recent_load_idx: 0,
            wp_rng: 0x2545_F491_4F6C_DD1D,
            fault_plan: None,
            degrade_until: Cycle::ZERO,
            degrade_window_start: Cycle::ZERO,
            degrade_window_replays: 0,
            pending_error: None,
            recovery_ready_at: Cycle::NEVER,
            step_dirty: true,
            step_stamp: Cycle::ZERO,
            commit_ring: VecDeque::new(),
            diff: None,
            wakeup_bug_armed: false,
            wakeup_bug_fired: false,
            checkpoint_note: None,
            stats: SimStats::default(),
            memdep_violations: 0,
            wp_gen: WrongPathGen::new(0x57A7_5EED),
            sink,
            cfg,
            trace,
        }
    }

    /// The attached trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the simulator, returning the sink (and whatever it
    /// captured).
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// The machine configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current statistics (memory counters freshly exported).
    pub fn stats(&mut self) -> SimStats {
        self.mem.export_into(&mut self.stats);
        let es = self.engine.stats;
        self.stats.loads_spec_woken = es.speculative;
        self.stats.loads_conservative = es.conservative;
        self.stats.filter_sure_hit = es.sure_hit;
        self.stats.filter_sure_miss = es.sure_miss;
        self.stats.filter_unstable = es.unstable;
        self.stats.crit_predicted_critical = es.critical;
        self.stats.crit_predicted_noncritical = es.noncritical;
        self.stats.memdep_violations = self.memdep_violations;
        self.stats.clone()
    }

    /// Installs a fault-injection schedule (see [`FaultPlan`]) after
    /// validating it.
    ///
    /// # Errors
    ///
    /// [`SimError::ConfigInvalid`] if the plan contains a zero-duration
    /// or overlapping window.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), SimError> {
        plan.validate()?;
        self.fault_plan = Some(plan);
        Ok(())
    }

    /// Attaches an online differential checker: every subsequent commit
    /// is compared against the checker's golden model, and the first
    /// mismatch ends the run with [`SimError::Divergence`]. The oracle
    /// must consume a *fresh* copy of the same trace this simulator runs
    /// (attach before the first call to a `run` method).
    pub fn attach_diff_checker(&mut self, checker: DiffChecker) {
        self.diff = Some(checker);
    }

    /// Records the filesystem path of the nearest checkpoint this run
    /// relates to (last captured to, or restored from). The note rides
    /// along on [`DeadlockReport`]/[`DivergenceReport`] so failures name
    /// the warm state they can be reproduced from.
    pub fn set_checkpoint_note(&mut self, note: impl Into<String>) {
        self.checkpoint_note = Some(note.into());
    }

    /// The checkpoint note, if one was recorded.
    pub fn checkpoint_note(&self) -> Option<&str> {
        self.checkpoint_note.as_deref()
    }

    /// Commits verified by the attached differential checker, if any.
    pub fn diff_verified(&self) -> Option<u64> {
        self.diff.as_ref().map(DiffChecker::verified)
    }

    /// The bounded commit log: the last [`SimConfig::commit_log_window`]
    /// committed µ-ops, oldest first (empty when the knob is 0).
    pub fn recent_commits(&self) -> impl Iterator<Item = &CommitRecord> {
        self.commit_ring.iter()
    }

    /// Arms a deliberately-seeded wakeup-recovery bug for oracle "teeth"
    /// tests: the first schedule-misspeculation replay after arming
    /// silently drops one correct-path µ-op from the frontend, exactly
    /// the class of recovery bug the differential checker exists to
    /// catch. Never enable outside tests.
    pub fn seed_wakeup_bug(&mut self) {
        self.wakeup_bug_armed = true;
    }

    /// Whether the graceful-degradation fallback (non-speculative wakeup
    /// after a detected replay storm) is active this cycle.
    pub fn degraded(&self) -> bool {
        self.now < self.degrade_until
    }

    /// Runs until at least `n` more µ-ops commit, returning a structured
    /// error instead of panicking when the machine misbehaves:
    ///
    /// * [`SimError::Deadlock`] — no commit for
    ///   [`SimConfig::watchdog_cycles`] consecutive cycles;
    /// * [`SimError::InvariantViolation`] — the periodic checker (every
    ///   [`SimConfig::invariant_check_interval`] cycles, when non-zero)
    ///   caught internal state corruption;
    /// * [`SimError::TraceInvalid`] — the trace source handed fetch a
    ///   malformed µ-op.
    ///
    /// The simulator must not be used further after an error.
    pub fn try_run_committed(&mut self, n: u64) -> Result<SimStats, SimError> {
        let target = self.stats.committed_uops + n;
        let watchdog = self.cfg.watchdog_cycles;
        let interval = self.cfg.invariant_check_interval;
        while self.stats.committed_uops < target {
            self.tick();
            if let Some(e) = self.pending_error.take() {
                return Err(e);
            }
            if self.now.since(self.last_commit_at) >= watchdog {
                return Err(SimError::Deadlock(Box::new(self.deadlock_report())));
            }
            if interval > 0 && self.now.get().is_multiple_of(interval) {
                self.check_invariants()?;
            }
        }
        Ok(self.stats())
    }

    /// Like [`Self::try_run_committed`], but driven by the lane engine's
    /// *gated* stepper: each cycle runs only the stages that provably
    /// have work, the recovery buffer's readiness is tracked by a cached
    /// horizon instead of a per-cycle scan, and windows where *no* stage
    /// has work — 30–50% of all cycles on scheduler-bound workloads —
    /// are fast-forwarded in one jump.
    ///
    /// Produces bit-identical [`SimStats`], error values, and failure
    /// reports to [`Self::try_run_committed`]: a stage is only skipped
    /// on cycles where the real `tick` would have early-exited it, the
    /// fast-forward only covers cycles where a real `tick` would have
    /// advanced the clock and counted `cycles` (plus `degrade_cycles` /
    /// `dispatch_stall_cycles` where those stalls hold) without touching
    /// anything else, and the watchdog and periodic invariant checks
    /// land on exactly the cycles they would have fired on. Falls back
    /// to the reference loop under `legacy_scan` (the O(ROB) scan
    /// touches state every cycle) or an enabled trace sink (per-cycle
    /// occupancy events must be emitted).
    pub fn try_run_committed_ff(&mut self, n: u64) -> Result<SimStats, SimError> {
        if self.legacy_scan || S::ENABLED {
            return self.try_run_committed(n);
        }
        let target = self.stats.committed_uops + n;
        let watchdog = self.cfg.watchdog_cycles;
        let interval = self.cfg.invariant_check_interval;
        // Cycles may have been simulated outside this driver (plain
        // `tick`/`try_run_committed`, or a snapshot restore) since the
        // cache was last maintained; refresh it before trusting it.
        if self.step_stamp != self.now {
            self.step_dirty = true;
        }
        while self.stats.committed_uops < target {
            // Bulk fast-forward, legal only when the cached recovery
            // horizon is current (no stage ran since it was computed).
            if !self.step_dirty {
                if let Some((skip, dispatch_stall)) = self.quiet_skip() {
                    // Land exactly on the watchdog deadline (the report
                    // must carry the same cycle the per-tick check would
                    // see) and on every invariant-check multiple.
                    let deadline = self.last_commit_at.get().saturating_add(watchdog);
                    let mut skip = skip.min(deadline - self.now.get());
                    if let Some(period) = self.now.get().checked_div(interval) {
                        let next_check = (period + 1) * interval;
                        skip = skip.min(next_check - self.now.get());
                    }
                    self.advance_quiet(skip, dispatch_stall);
                    self.step_stamp = self.now;
                    if self.now.since(self.last_commit_at) >= watchdog {
                        return Err(SimError::Deadlock(Box::new(self.deadlock_report())));
                    }
                    if interval > 0 && self.now.get().is_multiple_of(interval) {
                        self.check_invariants()?;
                    }
                    continue;
                }
            }
            self.tick_fast();
            if let Some(e) = self.pending_error.take() {
                return Err(e);
            }
            if self.now.since(self.last_commit_at) >= watchdog {
                return Err(SimError::Deadlock(Box::new(self.deadlock_report())));
            }
            if interval > 0 && self.now.get().is_multiple_of(interval) {
                self.check_invariants()?;
            }
        }
        Ok(self.stats())
    }

    /// One *gated* cycle: advances the clock like [`Self::tick`], then
    /// runs only the stages whose no-op conditions do not hold. Each
    /// gate is checked immediately before its stage, in stage order, so
    /// it sees exactly the state the real stage would (a stage that runs
    /// can arm the next — commit firing a store release, execute pushing
    /// a squash into recovery). Gates are conservative: a false positive
    /// calls a stage that early-exits (harmless); the no-op conditions
    /// make false negatives impossible:
    ///
    /// * deferred wakes — nothing due (`min apply_at > now`);
    /// * commit — ROB head absent, not `Done`, or `done_at > now`;
    /// * execute — no in-flight group due (`issue_cycle + delay + 1`);
    /// * issue — no drainable scheduler event (due timer, woken
    ///   watcher, store release), empty ready set, and no selectable
    ///   recovery member (tracked by the cached horizon
    ///   `recovery_ready_at`, recomputed only on cycles where a stage
    ///   that can move wake times or recovery membership ran);
    /// * dispatch — frontend head absent or not ready (no work, no
    ///   stall stat), or ready but resource-blocked (counts the
    ///   dispatch stall without walking the stage);
    /// * fetch — stalled, frontend at capacity, or parked in wrong-path
    ///   mode with wrong-path fetch disabled.
    ///
    /// When a recovery member *is* selectable the full issue stage runs
    /// with its recovery scan; otherwise the scan (an O(members) walk
    /// per cycle, the priciest always-on cost of the reference tick
    /// during replay storms) is skipped.
    fn tick_fast(&mut self) {
        self.now += 1;
        self.stats.cycles += 1;
        if self.degraded() {
            self.stats.degrade_cycles += 1;
        }
        let now = self.now;
        let mut dirty = self.step_dirty;

        if self.deferred_wakes.iter().any(|&(at, _, _)| at <= now) {
            self.apply_deferred_wakes();
            dirty = true;
        }
        if self
            .rob
            .front()
            .is_some_and(|h| h.state == UopState::Done && h.done_at <= now)
        {
            self.commit();
            dirty = true;
        }
        if self
            .inflight
            .front()
            .is_some_and(|&(c, _)| c + self.delay < now)
        {
            self.execute();
            dirty = true;
        }
        let scan_recovery = if dirty {
            // Wake times or membership may have moved; the horizon is
            // stale. An empty buffer needs no walk to re-derive it.
            if self.recovery.is_empty() {
                self.recovery_ready_at = Cycle::NEVER;
                false
            } else {
                true
            }
        } else {
            self.recovery_ready_at <= now
        };
        let issue_needed = scan_recovery
            || self.sched.ready_len() > 0
            || self.rename.has_woken()
            || self.sched.has_store_woken()
            || self.sched.next_due().is_some_and(|d| d <= now);
        let issued_before = self.stats.issued_total;
        if issue_needed {
            self.issue_inner(if scan_recovery {
                RecoveryScan::ScanTracked
            } else {
                RecoveryScan::Skip
            });
        }
        // Past this cycle's walk, only an actual issue can move wake
        // times (wakeup speculation on the issued µ-op's destination);
        // drains re-park without waking, and dispatch/fetch cannot touch
        // recovery (new dispatches are IQ-tracked, not recovery members,
        // and fetch touches only the frontend/predictors/i-cache).
        self.step_dirty = self.stats.issued_total != issued_before;

        if let Some(f) = self.frontend.front() {
            if f.ready_at <= now {
                let blocked = self.rob.len() >= self.cfg.rob_entries as usize
                    || self.iq_used >= self.cfg.iq_entries
                    || (f.uop.class.is_load() && self.lq_used >= self.cfg.lq_entries)
                    || (f.uop.class.is_store() && self.sq_used >= self.cfg.sq_entries)
                    || f.uop
                        .dst
                        .is_some_and(|d| self.rename.free_count(d.class) == 0);
                if blocked {
                    // Exactly the reference stage's "stalled with nothing
                    // dispatched" accounting, without walking the stage.
                    self.stats.dispatch_stall_cycles += 1;
                } else {
                    self.dispatch();
                }
            }
        }
        if now >= self.fetch_stall_until
            && self.frontend.len() < self.frontend_cap
            && (self.cfg.wrong_path || !self.wrong_path_mode)
        {
            self.fetch();
        }
        self.step_stamp = now;
    }

    /// [`Self::ready_to_issue`] for recovery members, answering *when*
    /// instead of *whether*: `None` when the member is unbounded (a
    /// source with no finite wake time, or an unexecuted predicted store
    /// dependence — it cannot become selectable without an event that
    /// re-dirties the stepper cache), otherwise the latest source wake
    /// (selectable now iff `<= now`). Agrees with `ready_to_issue`
    /// exactly: `Some(at) && at <= now ⇔ ready`.
    fn replay_ready_at(&self, seq: SeqNum) -> Option<Cycle> {
        let e = self.entry(seq).expect("recovery member in ROB");
        let mut latest = Cycle::ZERO;
        for s in e.srcs.iter().flatten() {
            let w = self.rename.wake_at(*s);
            if w == Cycle::NEVER {
                return None;
            }
            if w > latest {
                latest = w;
            }
        }
        if e.store_dep.is_some_and(|dep| {
            self.entry(dep)
                .is_some_and(|s| s.uop.class.is_store() && !s.store_executed)
        }) {
            return None;
        }
        Some(latest)
    }

    /// Probes whether the upcoming cycles are *quiet* — provably free of
    /// any stage activity — and if so, how many may be skipped. Only
    /// valid when the cached recovery horizon is current (`!step_dirty`).
    ///
    /// Returns `Some((n, dispatch_stall))` when cycles `now+1 ..= now+n`
    /// are all quiet (`dispatch_stall` reports whether each of them
    /// would have counted a dispatch stall), `None` when the next cycle
    /// is (or may be) busy. The per-stage no-op conditions are those of
    /// [`Self::tick_fast`]; everything else the stages consult
    /// (scoreboard wake/avail times, memory hierarchy, predictors,
    /// fault windows) is only read when one of them fires, so the
    /// earliest stage event bounds the skip. Conservative by
    /// construction: anything this cannot bound (e.g. a ready-but-port-
    /// blocked µ-op) reports busy and falls back to a real cycle.
    fn quiet_skip(&mut self) -> Option<(u64, bool)> {
        let c = self.now + 1;
        // Cheapest busy checks first: scheduler events pending this cycle.
        if self.sched.ready_len() > 0 || self.rename.has_woken() || self.sched.has_store_woken() {
            return None;
        }
        let mut event = self.recovery_ready_at;
        if event <= c {
            return None;
        }
        if let Some(head) = self.rob.front() {
            if head.state == UopState::Done {
                if head.done_at <= c {
                    return None;
                }
                event = event.min(head.done_at);
            }
        }
        if let Some((issued_at, _)) = self.inflight.front() {
            let due = *issued_at + self.delay + 1;
            if due <= c {
                return None;
            }
            event = event.min(due);
        }
        for &(apply_at, _, _) in &self.deferred_wakes {
            if apply_at <= c {
                return None;
            }
            event = event.min(apply_at);
        }
        if let Some(due) = self.sched.next_due() {
            if due <= c {
                return None;
            }
            event = event.min(due);
        }
        let mut dispatch_stall = false;
        if let Some(f) = self.frontend.front() {
            if f.ready_at <= c {
                let blocked = self.rob.len() >= self.cfg.rob_entries as usize
                    || self.iq_used >= self.cfg.iq_entries
                    || (f.uop.class.is_load() && self.lq_used >= self.cfg.lq_entries)
                    || (f.uop.class.is_store() && self.sq_used >= self.cfg.sq_entries)
                    || f.uop
                        .dst
                        .is_some_and(|d| self.rename.free_count(d.class) == 0);
                if !blocked {
                    return None;
                }
                dispatch_stall = true;
            } else {
                event = event.min(f.ready_at);
            }
        }
        let wp_parked = self.wrong_path_mode && !self.cfg.wrong_path;
        if self.frontend.len() < self.frontend_cap && !wp_parked {
            if self.fetch_stall_until <= c {
                return None;
            }
            event = event.min(self.fetch_stall_until);
        }
        if event == Cycle::NEVER {
            // Nothing will ever happen again; the caller's watchdog clamp
            // bounds the skip and surfaces the deadlock.
            return Some((u64::MAX, dispatch_stall));
        }
        // `event` is the first cycle with work; skip up to just before it.
        Some((event.get() - self.now.get() - 1, dispatch_stall))
    }

    /// Advances the clock over `n` quiet cycles, applying exactly the
    /// statistics a real [`Self::tick`] would have counted on each:
    /// `cycles` always, `degrade_cycles` while the degradation window is
    /// active, and `dispatch_stall_cycles` when the probe saw a ready
    /// frontend head blocked on a structural resource (the condition is
    /// constant across a quiet window — nothing that feeds it changes).
    fn advance_quiet(&mut self, n: u64, dispatch_stall: bool) {
        debug_assert!(n >= 1);
        self.stats.degrade_cycles += self
            .degrade_until
            .get()
            .saturating_sub(self.now.get() + 1)
            .min(n);
        if dispatch_stall {
            self.stats.dispatch_stall_cycles += n;
        }
        self.now += n;
        self.stats.cycles += n;
    }

    /// Captures the current pipeline occupancy (cheap; no simulation
    /// side effects).
    pub fn snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            cycle: self.now,
            rob: self.rob.len(),
            iq: self.iq_used,
            lq: self.lq_used,
            sq: self.sq_used,
            frontend: self.frontend.len(),
            recovery: self.recovery.iter().map(|(_, g)| g.len()).sum(),
            inflight: self.inflight.iter().map(|(_, g)| g.len()).sum(),
            wrong_path: self.wrong_path_mode,
            committed: self.stats.committed_uops,
            issued: self.stats.issued_total,
            replayed: self.stats.replayed_miss + self.stats.replayed_bank,
        }
    }

    /// Builds the watchdog's detailed picture of the stuck window.
    fn deadlock_report(&self) -> DeadlockReport {
        DeadlockReport {
            snapshot: self.snapshot(),
            watchdog_cycles: self.cfg.watchdog_cycles,
            detail: self.window_detail(),
            checkpoint: self.checkpoint_note.clone(),
            trace: self.sink.recent(),
        }
    }

    /// Human-readable dump of in-flight scheduler/replay state: ROB head
    /// entries with their wake/avail times, the recovery head group, and
    /// the in-flight issue groups. Shared by deadlock and divergence
    /// reports.
    fn window_detail(&self) -> String {
        use std::fmt::Write as _;
        // Streamed into one buffer — no intermediate Vec<String> or
        // per-field format! allocations (this runs from failure reports,
        // but also from tests exercising them in bulk).
        let mut msg = String::new();
        for e in self.rob.iter().take(12) {
            let _ = write!(
                msg,
                "  {} {} {:?} issued={}@{:?} rec={} iq={} dep={:?} srcs=[",
                e.seq,
                e.uop.class,
                e.state,
                e.times_issued,
                e.issue_cycle,
                e.in_recovery,
                e.holds_iq,
                e.store_dep
            );
            for (i, s) in e.srcs.iter().flatten().enumerate() {
                let _ = write!(
                    msg,
                    "{}{:?}/w{:?}/a{:?}",
                    if i > 0 { ", " } else { "" },
                    s.reg,
                    self.rename.wake_at(*s),
                    self.rename.avail_at(*s)
                );
            }
            msg.push_str("]\n");
        }
        if let Some((c, g)) = self.recovery.front() {
            let _ = writeln!(msg, "  recovery head group @{c:?}: {g:?}");
        }
        msg.push_str("  inflight groups: [");
        for (i, (c, g)) in self.inflight.iter().enumerate() {
            let _ = write!(msg, "{}({c:?}, {})", if i > 0 { ", " } else { "" }, g.len());
        }
        msg.push_str("]\n");
        msg
    }

    /// Verifies the machine's internal-consistency invariants:
    /// occupancy counters vs structure contents, physical-register
    /// free-list conservation, and recovery-buffer/in-flight group
    /// consistency. Cheap enough to run every few thousand cycles (see
    /// [`SimConfig::invariant_check_interval`]); catches state corruption
    /// close to where it happened instead of as a downstream deadlock.
    pub fn check_invariants(&self) -> Result<(), SimError> {
        let fail = |what: String| {
            Err(SimError::InvariantViolation(InvariantReport {
                snapshot: self.snapshot(),
                what,
            }))
        };
        // Occupancy counters must equal what the ROB actually holds.
        let iq = self.rob.iter().filter(|e| e.holds_iq).count() as u32;
        if iq != self.iq_used {
            return fail(format!(
                "iq_used {} != {} IQ-holding ROB entries",
                self.iq_used, iq
            ));
        }
        let lq = self.rob.iter().filter(|e| e.uop.class.is_load()).count() as u32;
        if lq != self.lq_used {
            return fail(format!("lq_used {} != {} loads in ROB", self.lq_used, lq));
        }
        let sq = self.rob.iter().filter(|e| e.uop.class.is_store()).count() as u32;
        if sq != self.sq_used {
            return fail(format!("sq_used {} != {} stores in ROB", self.sq_used, sq));
        }
        // Structure capacities.
        if self.rob.len() > self.cfg.rob_entries as usize {
            return fail(format!(
                "rob {} over capacity {}",
                self.rob.len(),
                self.cfg.rob_entries
            ));
        }
        if self.iq_used > self.cfg.iq_entries
            || self.lq_used > self.cfg.lq_entries
            || self.sq_used > self.cfg.sq_entries
        {
            return fail(format!(
                "queue over capacity: iq {}/{} lq {}/{} sq {}/{}",
                self.iq_used,
                self.cfg.iq_entries,
                self.lq_used,
                self.cfg.lq_entries,
                self.sq_used,
                self.cfg.sq_entries
            ));
        }
        // Recovery buffer: every member must be a live ROB entry still
        // marked as waiting in the buffer.
        for (cycle, group) in &self.recovery {
            for &seq in group {
                let Some(e) = self.entry(seq) else {
                    return fail(format!("recovery group @{cycle:?} holds dead seq {seq}"));
                };
                if !e.in_recovery || e.state != UopState::Waiting {
                    return fail(format!(
                        "recovery member {seq} in state {:?} (in_recovery={})",
                        e.state, e.in_recovery
                    ));
                }
            }
        }
        // In-flight groups may hold stale members (entries re-validate by
        // state at execute), but never sequence numbers never dispatched.
        for (cycle, group) in &self.inflight {
            for &seq in group {
                if seq >= self.next_seq {
                    return fail(format!(
                        "inflight group @{cycle:?} holds undispatched seq {seq}"
                    ));
                }
            }
        }
        // Physical-register free-list conservation: the free lists, the
        // rename maps, and the previous mappings held by in-ROB µ-ops
        // must exactly partition each register file (no leak, no
        // double-free).
        let mut held: [Vec<ss_types::PhysReg>; 2] = [Vec::new(), Vec::new()];
        for e in &self.rob {
            if let Some((_, prev)) = e.dst {
                held[prev.class.index()].push(prev.reg);
            }
        }
        if let Err(what) = self.rename.audit(&held[0], &held[1]) {
            return fail(what);
        }
        Ok(())
    }

    /// Advances the machine one cycle.
    pub fn tick(&mut self) {
        self.now += 1;
        self.stats.cycles += 1;
        if self.degraded() {
            self.stats.degrade_cycles += 1;
        }
        self.apply_deferred_wakes();
        self.commit();
        self.execute();
        self.issue();
        self.dispatch();
        self.fetch();
        if S::ENABLED {
            self.sink.record(TraceEvent::Occupancy {
                cycle: self.now,
                rob: self.rob.len() as u32,
                iq: self.iq_used,
                lq: self.lq_used,
                sq: self.sq_used,
                recovery: self.recovery.iter().map(|(_, g)| g.len() as u32).sum(),
                inflight: self.inflight.iter().map(|(_, g)| g.len() as u32).sum(),
            });
        }
    }

    /// Counts a replay event and, when graceful degradation is
    /// configured, feeds the sliding replay-storm detector: crossing
    /// `replay_threshold` events within `window_cycles` switches load
    /// wakeup to the conservative fallback for `duration_cycles`.
    fn note_replay_event(&mut self, cause: ReplayCause) {
        self.stats.add_replay_event(cause);
        let Some(d) = self.cfg.degrade else { return };
        if self.degraded() {
            return;
        }
        if self.now.since(self.degrade_window_start) >= d.window_cycles {
            self.degrade_window_start = self.now;
            self.degrade_window_replays = 0;
        }
        self.degrade_window_replays += 1;
        if self.degrade_window_replays >= d.replay_threshold {
            self.degrade_until = self.now + d.duration_cycles;
            self.stats.degrade_entries += 1;
            self.degrade_window_start = self.now;
            self.degrade_window_replays = 0;
        }
    }

    /// Applies a pending wake revision for `reg` immediately (a replay
    /// event observed the late source before its signal-time reschedule).
    fn force_deferred_wake(&mut self, reg: PhysRef) {
        let rename = &mut self.rename;
        self.deferred_wakes.retain(|&(_, r, wake)| {
            if r == reg {
                if rename.avail_at(r) != Cycle::NEVER {
                    rename.set_wake(r, wake);
                }
                false
            } else {
                true
            }
        });
    }

    /// Applies wake revisions whose hit/miss signal has now arrived. A
    /// revision is dropped if the producing load was squashed since (its
    /// availability was reset; the re-execution schedules a fresh one).
    fn apply_deferred_wakes(&mut self) {
        let now = self.now;
        let rename = &mut self.rename;
        self.deferred_wakes.retain(|&(apply_at, reg, wake)| {
            if apply_at > now {
                return true;
            }
            if rename.avail_at(reg) != Cycle::NEVER {
                rename.set_wake(reg, wake);
            }
            false
        });
    }

    // ------------------------------------------------------------------
    // entry plumbing
    // ------------------------------------------------------------------

    fn entry(&self, seq: SeqNum) -> Option<&RobEntry> {
        let base = self.rob.front()?.seq;
        if seq < base {
            return None;
        }
        self.rob.get((seq.get() - base.get()) as usize)
    }

    fn entry_mut(&mut self, seq: SeqNum) -> Option<&mut RobEntry> {
        let base = self.rob.front()?.seq;
        if seq < base {
            return None;
        }
        self.rob.get_mut((seq.get() - base.get()) as usize)
    }

    // ------------------------------------------------------------------
    // event-driven scheduler maintenance
    // ------------------------------------------------------------------

    /// (Re-)registers `seq` with the event-driven scheduler after any
    /// event that may change its readiness. Invalidate-then-classify:
    ///
    /// * every outstanding parked reference goes stale (epoch bump);
    /// * not an IQ-waiting entry → nothing to track;
    /// * a source is `NEVER` (conservative/unissued producer) → watch
    ///   only the `NEVER` sources; nothing can change until one of them
    ///   acquires a wake time, and the re-classification that triggers
    ///   sees every finite source fresh;
    /// * otherwise some source wakes at a finite future time → watch the
    ///   *latest*-waking source and park on the wake heap at its wake.
    ///   Readiness is the max over sources, so only the governing
    ///   source's wake moving *earlier* can advance it (broadcast fires
    ///   the watcher); any source moving *later* is discovered at the
    ///   parked re-check, before the µ-op could have issued anyway;
    /// * blocked on an unexecuted predicted store → park on that store;
    /// * otherwise → mark ready.
    ///
    /// The ready bit is a *belief*: selection re-verifies with
    /// [`Self::ready_to_issue`] and re-registers on mismatch (lazy
    /// invalidation), so a stale bit costs a re-check, never correctness.
    fn sched_register(&mut self, seq: SeqNum) {
        if self.legacy_scan {
            return;
        }
        let epoch = self.sched.invalidate(seq);
        let (srcs, store_dep) = {
            let Some(e) = self.entry(seq) else { return };
            if !e.is_iq_waiting() {
                return;
            }
            (e.srcs, e.store_dep)
        };
        let now = self.now;
        let mut latest = Cycle::ZERO;
        let mut latest_src = None;
        let mut has_never = false;
        for s in srcs.iter().flatten() {
            let w = self.rename.wake_at(*s);
            if w > now {
                if w == Cycle::NEVER {
                    has_never = true;
                    self.rename.watch(*s, seq, epoch);
                } else if w > latest {
                    latest = w;
                    latest_src = Some(*s);
                }
            }
        }
        if has_never {
            return;
        }
        if let Some(governing) = latest_src {
            self.rename.watch(governing, seq, epoch);
            self.sched.park_until(latest, seq, epoch);
            return;
        }
        if let Some(dep) = store_dep {
            let unexecuted = self
                .entry(dep)
                .is_some_and(|s| s.uop.class.is_store() && !s.store_executed);
            if unexecuted {
                self.sched.park_on_store(dep, seq, epoch);
                return;
            }
        }
        self.sched.mark_ready(seq);
    }

    /// Drops `seq` from the scheduler (issued or flushed): clears its
    /// ready bit and stales every parked reference.
    fn sched_forget(&mut self, seq: SeqNum) {
        if !self.legacy_scan {
            self.sched.invalidate(seq);
        }
    }

    /// Releases every µ-op parked on `store` (it executed or committed)
    /// and re-registers them immediately.
    fn sched_fire_store_event(&mut self, store: SeqNum) {
        if self.legacy_scan {
            return;
        }
        self.sched.fire_store(store);
        while let Some(seq) = self.sched.pop_store_woken() {
            self.sched_register(seq);
        }
    }

    /// Drains the cycle's scheduler events at the top of the issue stage:
    /// timer-parked µ-ops whose latest source wake has arrived, and
    /// µ-ops whose watched source registers had their wake time changed
    /// since last cycle (tag broadcast). Each is re-classified by
    /// [`Self::sched_register`].
    fn sched_drain_events(&mut self) {
        while let Some(seq) = self.sched.pop_due(self.now) {
            self.sched_register(seq);
        }
        if self.rename.has_woken() {
            let mut woken = std::mem::take(&mut self.scratch_woken);
            self.rename.drain_woken(&mut woken);
            for &(seq, epoch) in &woken {
                if self.sched.epoch_matches(seq, epoch) {
                    self.sched_register(seq);
                }
            }
            woken.clear();
            self.scratch_woken = woken;
        }
    }

    /// Debug-build cross-check (every 256 cycles): no eligible ready
    /// µ-op may be stranded outside the ready bitmap, and every marked
    /// bit must belong to a live IQ-waiting entry. The bitmap may
    /// legitimately hold entries that are no longer `ready_to_issue`
    /// (lazy invalidation); selection filters those.
    #[cfg(debug_assertions)]
    fn sched_cross_check(&self) {
        if !self.now.get().is_multiple_of(256) {
            return;
        }
        for e in &self.rob {
            if e.is_iq_waiting() && self.ready_to_issue(e.seq) {
                assert!(
                    self.sched.is_ready(e.seq),
                    "stranded ready µ-op {} ({:?}) at {}",
                    e.seq,
                    e.uop.class,
                    self.now
                );
            }
            if self.sched.is_ready(e.seq) {
                assert!(
                    e.is_iq_waiting(),
                    "ready bit on non-IQ-waiting µ-op {} ({:?}) at {}",
                    e.seq,
                    e.state,
                    self.now
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.cfg.retire_width {
            let Some(head) = self.rob.front() else { break };
            if head.state != UopState::Done || head.done_at > self.now {
                break;
            }
            let e = self.rob.pop_front().expect("head exists");
            debug_assert!(!e.wrong_path, "wrong-path µ-op reached commit");
            if Self::tracked_store_qw(&e).is_some() {
                let front = self.store_ring.pop_front();
                debug_assert_eq!(front.map(|(_, s)| s), Some(e.seq), "store ring out of sync");
            }
            self.last_commit_at = self.now;
            self.stats.committed_uops += 1;
            if S::ENABLED {
                self.sink.record(TraceEvent::Commit {
                    cycle: self.now,
                    seq: e.seq,
                });
            }

            // Commit-log hook: record the canonical commit and compare it
            // online against the golden model, if one is attached. The
            // record is content-only (no timing), so scheduler/replay
            // timing differences can never diverge — only a dropped,
            // duplicated, reordered, or wrong-path commit can.
            let log_window = self.cfg.commit_log_window as usize;
            if log_window > 0 || self.diff.is_some() {
                let rec = CommitRecord {
                    seq: self.stats.committed_uops - 1,
                    pc: e.uop.pc,
                    kind: e.uop.class,
                    dst: e.uop.dst.map(|d| (d.class, d.reg)),
                };
                let mismatch = match &mut self.diff {
                    Some(checker) if self.pending_error.is_none() => checker.check(&rec).err(),
                    _ => None,
                };
                if let Some(expected) = mismatch {
                    self.pending_error = Some(SimError::Divergence(Box::new(DivergenceReport {
                        snapshot: self.snapshot(),
                        seq: rec.seq,
                        expected,
                        actual: rec,
                        recent: self.commit_ring.iter().copied().collect(),
                        detail: self.window_detail(),
                        checkpoint: self.checkpoint_note.clone(),
                        trace: self.sink.recent(),
                    })));
                }
                if log_window > 0 {
                    if self.commit_ring.len() >= log_window {
                        self.commit_ring.pop_front();
                    }
                    self.commit_ring.push_back(rec);
                }
            }

            // Criticality criterion.
            let critical = match self.cfg.crit_criterion {
                // Completed while (or after) becoming the commit blocker.
                CritCriterion::RobHead => e.done_at + 1 >= self.now,
                // Was the oldest ready µ-op in the IQ when it issued
                // (Tune's QOLD).
                CritCriterion::IqOldest => e.was_iq_oldest,
            };
            self.engine.on_retire(e.uop.pc, critical);

            match e.uop.class {
                OpClass::Load => {
                    self.stats.committed_loads += 1;
                    self.lq_used -= 1;
                    self.engine.on_load_commit(e.uop.pc, e.load_l1_hit);
                }
                OpClass::Store => {
                    self.sq_used -= 1;
                    let addr = e.uop.mem_addr().expect("store has address");
                    self.mem.store_commit(addr, self.now);
                    // Drain any (stale) waiter records before the seq slot
                    // can be reused.
                    self.sched_fire_store_event(e.seq);
                }
                OpClass::Branch(kind) => {
                    if matches!(kind, ss_types::BranchKind::Conditional) {
                        self.stats.cond_branches += 1;
                        if e.mispredicted && e.dir_wrong {
                            self.stats.cond_mispredicts += 1;
                        }
                    }
                    if e.mispredicted && !e.dir_wrong {
                        self.stats.target_mispredicts += 1;
                    }
                    let b = e.uop.branch.expect("branch payload");
                    if let Some(pred) = &e.pred {
                        let target = if b.taken { b.target } else { e.uop.next_pc() };
                        self.bpred
                            .on_commit(e.uop.pc, kind, b.taken, target, &pred.meta);
                    }
                }
                _ => {}
            }
            if let Some((_new, prev)) = e.dst {
                self.rename.release(prev);
            }
        }
    }

    // ------------------------------------------------------------------
    // execute
    // ------------------------------------------------------------------

    fn execute(&mut self) {
        // Pop the group that reaches Execute this cycle.
        let exec_issue_cycle = match self.now.get().checked_sub(self.delay + 1) {
            Some(c) => Cycle::new(c),
            None => return,
        };
        let group = match self.inflight.front() {
            Some((c, _)) if *c == exec_issue_cycle => self
                .inflight
                .pop_front()
                .map(|(_, g)| g)
                .unwrap_or_default(),
            Some((c, _)) => {
                assert!(
                    *c > exec_issue_cycle,
                    "missed issue group: front {c:?} vs exec {exec_issue_cycle:?} at {}",
                    self.now
                );
                return;
            }
            None => return,
        };

        #[cfg(debug_assertions)]
        let processed_cycle = exec_issue_cycle;
        let mut replayed = false;
        for &seq in &group {
            // Validate membership: the entry may have been flushed or
            // squashed since issue.
            let Some(e) = self.entry(seq) else { continue };
            if e.state != UopState::InFlight || e.issue_cycle != exec_issue_cycle {
                continue;
            }
            if replayed {
                // Already replaying this cycle: the rest of the group is
                // part of the squashed window.
                continue;
            }
            // Operand verification against ground truth.
            let late_src = e
                .srcs
                .iter()
                .flatten()
                .find(|&&s| self.rename.avail_at(s) > self.now)
                .copied();
            if let Some(src) = late_src {
                // The replay detection IS the hardware's notification
                // that the source is late: apply its pending reschedule
                // now so squashed dependents wait for the residue instead
                // of recirculating blindly every few cycles.
                self.force_deferred_wake(src);
                let cause = self.rename.late_cause(src).unwrap_or(ReplayCause::L1Miss);
                // For the trace: the replay's trigger is the µ-op
                // producing the late source (typically the missing load);
                // fall back to the detecting µ-op if the producer already
                // left the ROB.
                let trigger = if S::ENABLED {
                    self.rob
                        .iter()
                        .find(|p| p.dst.map(|(new, _)| new) == Some(src))
                        .map_or(seq, |p| p.seq)
                } else {
                    seq
                };
                match self.cfg.replay_scheme {
                    ReplayScheme::Squash => {
                        self.trigger_replay(cause, trigger);
                        replayed = true;
                    }
                    ReplayScheme::Selective => {
                        // Pentium-4-style: only this µ-op recycles; the
                        // rest of the window is untouched and issue
                        // continues this cycle.
                        self.note_replay_event(cause);
                        self.stats.add_replayed(cause, 1);
                        let mut group = self.group_pool.get();
                        self.squash_one(seq, &mut group);
                        if S::ENABLED {
                            self.record_squash(seq, trigger, cause);
                        }
                        if !group.is_empty() {
                            self.recovery.push_back((self.now, group));
                        } else {
                            self.group_pool.put(group);
                        }
                    }
                    ReplayScheme::Refetch => {
                        // Branch-misprediction-style recovery: squash from
                        // the offender onward and stall fetch for a
                        // frontend refill.
                        self.note_replay_event(cause);
                        let n = self.squash_from(seq, Some((trigger, cause)));
                        self.stats.add_replayed(cause, n);
                        self.issue_blocked_at = Some(self.now);
                        self.fetch_stall_until = self.now + self.cfg.frontend_depth();
                        // Group members *older* than the offender are
                        // unaffected and keep executing, so the loop
                        // continues without the `replayed` flag; younger
                        // members were reset to Waiting and fail the
                        // state re-validation.
                    }
                }
                continue;
            }
            self.execute_one(seq);
        }
        self.group_pool.put(group);
        #[cfg(debug_assertions)]
        {
            // Paranoia: nothing issued at or before the processed cycle may
            // remain InFlight — it would be orphaned forever.
            if let Some(e) = self
                .rob
                .iter()
                .find(|e| e.state == UopState::InFlight && e.issue_cycle <= processed_cycle)
            {
                panic!(
                    "orphaned in-flight µ-op {} (issued @{:?}, exec target {:?}, now {})",
                    e.seq, e.issue_cycle, processed_cycle, self.now
                );
            }
        }
    }

    /// Trace helper: records a replay squash for `seq`, plus its
    /// recovery-buffer reinsertion when the squash routed it there.
    /// Callers guard with `S::ENABLED`.
    fn record_squash(&mut self, seq: SeqNum, trigger: SeqNum, cause: ReplayCause) {
        self.sink.record(TraceEvent::ReplaySquash {
            cycle: self.now,
            seq,
            trigger,
            cause,
        });
        if self.entry(seq).is_some_and(|e| e.in_recovery) {
            self.sink.record(TraceEvent::RecoveryEnter {
                cycle: self.now,
                seq,
            });
        }
    }

    /// Executes one verified µ-op (`state == InFlight`).
    fn execute_one(&mut self, seq: SeqNum) {
        // Copy out the (all-`Copy`) fields this stage reads; cloning the
        // whole `RobEntry` here was a ~200-byte memcpy per executed µ-op.
        let (uop, wrong_path, dst, prf_delay, mispredicted, mispred_handled, pred) = {
            let e = self.entry(seq).expect("validated");
            (
                e.uop,
                e.wrong_path,
                e.dst,
                e.prf_delay,
                e.mispredicted,
                e.mispred_handled,
                e.pred,
            )
        };
        let exec_start = self.now;
        match uop.class {
            OpClass::Load => {
                let aliasing = if wrong_path {
                    None
                } else {
                    self.youngest_older_aliasing_store(seq)
                };
                if let Some((store_seq, false)) = aliasing {
                    // Memory-order violation: the aliasing store has not
                    // executed yet.
                    self.handle_violation(seq, store_seq);
                    return;
                }
                let addr = uop.mem_addr().expect("load has address");
                let forwarded = matches!(aliasing, Some((_, true)));
                let (mut extra, mut cause, l1_hit) = if forwarded {
                    (0u64, None, true)
                } else {
                    let r = self.mem.load(uop.pc, addr, exec_start, wrong_path);
                    let hit = r.level == MemLevel::L1;
                    if !wrong_path {
                        self.engine.on_load_outcome(hit);
                    }
                    let cause = if !hit {
                        Some(ReplayCause::L1Miss)
                    } else if r.bank_delay > 0 {
                        Some(ReplayCause::BankConflict)
                    } else {
                        None
                    };
                    (r.extra_latency, cause, hit)
                };
                // Fault injection: an active window delays this load's
                // data past what the hierarchy reported, attributed to
                // the window's replay cause. Wrong-path loads are exempt
                // (their timing never reaches the scoreboard).
                if !wrong_path {
                    if let Some((f_extra, f_cause)) = self
                        .fault_plan
                        .as_ref()
                        .and_then(|p| p.load_fault(exec_start))
                    {
                        extra += f_extra;
                        cause = Some(f_cause);
                        self.stats.faults_injected += 1;
                    }
                }
                if prf_delay > 0 {
                    extra += u64::from(prf_delay);
                    cause = cause.or(Some(ReplayCause::PrfConflict));
                }
                // Train the bank predictor with the actual bank.
                if !wrong_path {
                    if let Some(banking) = &self.cfg.l1d_banking {
                        let bank_bits = banking.banks.trailing_zeros();
                        let actual = match banking.interleaving {
                            BankInterleaving::Word => {
                                addr.bits(banking.interleave_bytes.trailing_zeros(), bank_bits)
                            }
                            BankInterleaving::Set => {
                                addr.bits(self.cfg.l1d.line_bytes.trailing_zeros(), bank_bits)
                            }
                        };
                        self.bank_pred.train(uop.pc, actual as u8);
                    }
                }
                let v = exec_start + self.cfg.l1d_load_to_use + extra;
                let dst = dst.expect("load writes a register").0;
                self.rename
                    .set_avail(dst, v, if extra > 0 { cause } else { None });
                // Wakeup revision: conservative loads wake dependents on
                // the hit/miss signal (one cycle before data ⇒ they pay
                // the issue-to-execute delay); speculatively-woken loads
                // that turned out late re-wake on the known residue (the
                // Pentium-4-style replay-loop schedule).
                let spec_wake = self.rename.wake_at(dst);
                if spec_wake == Cycle::NEVER {
                    // Conservative wakeup: dependents ride the actual
                    // hit/miss signal (one cycle before the data), paying
                    // the issue-to-execute delay on the chain.
                    self.rename
                        .set_wake(dst, Cycle::new((v.get() - 1).max(self.now.get() + 1)));
                } else if spec_wake + self.delay + 1 < v {
                    // Dependents woken at spec_wake would execute before
                    // the data exists. The hardware only learns this when
                    // the hit/miss signal arrives (v − 2); until then the
                    // speculative wakeup stands and dependents selected in
                    // the meantime replay — exactly the paper's doomed
                    // issues at small delays. From the signal on, pending
                    // dependents are rescheduled onto the known residue
                    // (the Pentium-4-style replay-loop schedule).
                    let revised = Cycle::new(
                        (v.get().saturating_sub(self.delay + 1)).max(self.now.get() + 1),
                    );
                    let signal_at = Cycle::new((v.get() - 2).max(self.now.get()));
                    if signal_at <= self.now {
                        self.rename.set_wake(dst, revised);
                    } else {
                        self.deferred_wakes.push((signal_at, dst, revised));
                    }
                }
                let em = self.entry_mut(seq).expect("validated");
                em.load_l1_hit = l1_hit;
                em.done_at = v;
                em.state = UopState::Done;
                if em.holds_iq {
                    em.holds_iq = false;
                    self.iq_used -= 1;
                }
            }
            OpClass::Store => {
                let em = self.entry_mut(seq).expect("validated");
                em.store_executed = true;
                em.done_at = exec_start + 1;
                em.state = UopState::Done;
                if em.holds_iq {
                    em.holds_iq = false;
                    self.iq_used -= 1;
                }
                if !wrong_path {
                    self.store_sets.on_store_complete(uop.pc, seq);
                }
                // Release loads parked on this store's execution.
                self.sched_fire_store_event(seq);
            }
            OpClass::Branch(kind) => {
                {
                    let em = self.entry_mut(seq).expect("validated");
                    em.done_at = exec_start + 1;
                    em.state = UopState::Done;
                }
                if !wrong_path && mispredicted && !mispred_handled {
                    // Resolve: flush everything younger, repair the
                    // predictor, resume correct-path fetch. A later
                    // memory-order squash may re-execute this branch;
                    // `mispred_handled` keeps the flush from repeating
                    // (the refetched path is already correct).
                    let b = uop.branch.expect("branch payload");
                    if let Some(pred) = &pred {
                        self.bpred
                            .on_mispredict(uop.pc, kind, b.taken, uop.next_pc(), &pred.meta);
                    }
                    self.flush_younger_than(seq);
                    self.wrong_path_mode = false;
                    self.entry_mut(seq).expect("branch entry").mispred_handled = true;
                }
            }
            class => {
                let lat = class.base_latency();
                let em = self.entry_mut(seq).expect("validated");
                em.done_at = exec_start + lat + u64::from(em.prf_delay);
                em.state = UopState::Done;
                // avail/wake were set deterministically at issue
            }
        }
        // Trace the completed execution (memory-order violations reset
        // the load to Waiting above and are not an execution).
        if S::ENABLED {
            if let Some(e) = self.entry(seq) {
                if e.state == UopState::Done {
                    let done_at = e.done_at;
                    self.sink.record(TraceEvent::Execute {
                        cycle: exec_start,
                        seq,
                        done_at,
                    });
                }
            }
        }
    }

    /// Quadword key of a store the memory-order index tracks: correct-
    /// path stores with a known address — exactly the entries the
    /// aliasing walk can match. Wrong-path and address-less stores are
    /// invisible to it and stay out of [`Self::store_ring`].
    fn tracked_store_qw(e: &RobEntry) -> Option<u64> {
        if e.wrong_path || !e.uop.class.is_store() {
            return None;
        }
        e.uop.mem_addr().map(|a| a.get() >> 3)
    }

    /// Finds the youngest store older than `load_seq` to the same
    /// quadword, returning `(seq, executed)`. Aliasing is quadword-
    /// granular — the workloads emit aligned 8-byte accesses only.
    ///
    /// An unexecuted match is a memory-order violation if the load
    /// executes now; an executed match satisfies the load by
    /// store-to-load forwarding.
    ///
    /// The walk runs over [`Self::store_ring`] — the program-ordered ring
    /// of in-flight correct-path stores — so its cost is bounded by store
    /// queue occupancy, not ROB size.
    fn youngest_older_aliasing_store(&self, load_seq: SeqNum) -> Option<(SeqNum, bool)> {
        let load = self.entry(load_seq)?;
        let qw = load.uop.mem_addr()?.get() >> 3;
        for &(sqw, sseq) in self.store_ring.iter().rev() {
            if sseq >= load_seq {
                continue;
            }
            if sqw == qw {
                let executed = self
                    .entry(sseq)
                    .expect("store ring entry is in the ROB")
                    .store_executed;
                return Some((sseq, executed));
            }
        }
        None
    }

    /// Memory-order violation: train Store Sets, squash the load and
    /// everything younger back to re-issue, and make the load wait for
    /// the store.
    fn handle_violation(&mut self, load_seq: SeqNum, store_seq: SeqNum) {
        self.memdep_violations += 1;
        let load_pc = self.entry(load_seq).expect("load").uop.pc;
        let store_pc = self.entry(store_seq).expect("store").uop.pc;
        self.store_sets.on_violation(load_pc, store_pc);
        // Memory-order squashes carry no `ReplayCause` (they are not a
        // schedule misspeculation), so they go untraced; the load's
        // re-issue shows up as a fresh `Issue` event.
        let _ = self.squash_from(load_seq, None);
        let em = self.entry_mut(load_seq).expect("load");
        em.store_dep = Some(store_seq);
        // The dependence was attached after the squash walk registered
        // the load; re-classify so it parks on the store.
        self.sched_register(load_seq);
        self.issue_blocked_at = Some(self.now);
    }

    /// Alpha-style replay: squash every µ-op between Issue and Execute
    /// (all in-flight issue groups), lose one issue cycle, and account
    /// the squashed µ-ops to `cause`. `trigger` is the µ-op whose late
    /// result was detected (trace linkage only; no timing effect).
    fn trigger_replay(&mut self, cause: ReplayCause, trigger: SeqNum) {
        // Seeded-bug hook (tests only, armed via `seed_wakeup_bug`): a
        // recovery bug that loses one correct-path µ-op during the
        // squash. Timing-only wakeup bugs cannot change the commit
        // stream, so this models the dangerous class — replay recovery
        // that silently drops work — which the differential oracle must
        // catch as a pc mismatch at the next commit of the dropped spot.
        if self.wakeup_bug_armed && !self.wakeup_bug_fired {
            self.wakeup_bug_fired = true;
            let _ = self.next_correct_uop();
        }
        self.note_replay_event(cause);
        self.issue_blocked_at = Some(self.now);
        let mut squashed = 0u64;
        while let Some((issue_cycle, group)) = self.inflight.pop_front() {
            let mut recovery_group = self.group_pool.get();
            for &seq in &group {
                let Some(e) = self.entry(seq) else { continue };
                if e.state != UopState::InFlight || e.issue_cycle != issue_cycle {
                    continue;
                }
                squashed += 1;
                self.squash_one(seq, &mut recovery_group);
                if S::ENABLED {
                    self.record_squash(seq, trigger, cause);
                }
            }
            self.group_pool.put(group);
            if !recovery_group.is_empty() {
                self.recovery.push_back((issue_cycle, recovery_group));
            } else {
                self.group_pool.put(recovery_group);
            }
        }
        // The µ-op that detected the misspeculation is part of the
        // squashed window too (its group was popped before this call);
        // account it through the caller's `continue` path: the remaining
        // members of the executing group were skipped, not squashed, so
        // re-squash any InFlight stragglers with the exec group's cycle.
        let exec_cycle = Cycle::new(self.now.get() - self.delay - 1);
        let mut stragglers = std::mem::take(&mut self.scratch_squash);
        stragglers.clear();
        stragglers.extend(
            self.rob
                .iter()
                .filter(|e| e.state == UopState::InFlight && e.issue_cycle == exec_cycle)
                .map(|e| e.seq),
        );
        let mut recovery_group = self.group_pool.get();
        for &seq in &stragglers {
            squashed += 1;
            self.squash_one(seq, &mut recovery_group);
            if S::ENABLED {
                self.record_squash(seq, trigger, cause);
            }
        }
        stragglers.clear();
        self.scratch_squash = stragglers;
        if !recovery_group.is_empty() {
            self.recovery.push_front((exec_cycle, recovery_group));
        } else {
            self.group_pool.put(recovery_group);
        }
        self.stats.add_replayed(cause, squashed);
    }

    /// Squashes one issued-but-unexecuted µ-op back to a re-issuable
    /// state. Memory µ-ops still hold their IQ entry and re-issue from
    /// the scheduler; others go to the recovery buffer.
    fn squash_one(&mut self, seq: SeqNum, recovery_group: &mut Vec<SeqNum>) {
        let e = self.entry_mut(seq).expect("squash target");
        e.state = UopState::Waiting;
        let is_mem = e.uop.class.is_mem();
        let dst = e.dst;
        if !is_mem {
            e.in_recovery = true;
            recovery_group.push(seq);
        }
        if let Some((new, _)) = dst {
            self.rename.reset_timing(new);
        }
        // Memory µ-ops went back to IQ-waiting; recovery entries only
        // need their stale parked references dropped.
        self.sched_register(seq);
    }

    /// Squashes `from` and everything younger back to re-issue (memory-
    /// order violation and Refetch recovery; no true refetch — the µ-ops
    /// stay in the ROB). Returns the number of µ-ops squashed. `traced`
    /// carries the (trigger, cause) pair to trace the squashes with;
    /// `None` (memory-order violations) leaves them untraced.
    fn squash_from(&mut self, from: SeqNum, traced: Option<(SeqNum, ReplayCause)>) -> u64 {
        let mut seqs = std::mem::take(&mut self.scratch_squash);
        seqs.clear();
        seqs.extend(
            self.rob
                .iter()
                .filter(|e| e.seq >= from && e.state != UopState::Waiting)
                .map(|e| e.seq),
        );
        let n_squashed = seqs.len() as u64;
        let mut recovery_group = self.group_pool.get();
        for &seq in &seqs {
            let e = self.entry_mut(seq).expect("entry");
            let was_done = e.state == UopState::Done;
            e.state = UopState::Waiting;
            e.done_at = Cycle::NEVER;
            let is_mem = e.uop.class.is_mem();
            let is_store = e.uop.class.is_store();
            let wrong_path = e.wrong_path;
            let pc = e.uop.pc;
            let dst = e.dst;
            let mut reacquire_iq = false;
            let mut entered_recovery = false;
            if is_mem {
                // Re-acquire the IQ entry it released at execute.
                if was_done && !e.holds_iq {
                    e.holds_iq = true;
                    reacquire_iq = true;
                }
                if is_store {
                    e.store_executed = false;
                }
            } else if !e.in_recovery {
                e.in_recovery = true;
                recovery_group.push(seq);
                entered_recovery = true;
            }
            if reacquire_iq {
                self.iq_used += 1;
            }
            if is_store && !wrong_path {
                // Make the set's loads wait for this store again.
                let _ = self.store_sets.on_store_dispatch(pc, seq);
            }
            if let Some((new, _)) = dst {
                self.rename.reset_timing(new);
            }
            self.sched_register(seq);
            if S::ENABLED {
                if let Some((trigger, cause)) = traced {
                    self.sink.record(TraceEvent::ReplaySquash {
                        cycle: self.now,
                        seq,
                        trigger,
                        cause,
                    });
                    if entered_recovery {
                        self.sink.record(TraceEvent::RecoveryEnter {
                            cycle: self.now,
                            seq,
                        });
                    }
                }
            }
        }
        seqs.clear();
        self.scratch_squash = seqs;
        // Drop stale in-flight bookkeeping; entries re-validate by state.
        if !recovery_group.is_empty() {
            self.recovery.push_back((self.now, recovery_group));
        } else {
            self.group_pool.put(recovery_group);
        }
        n_squashed
    }

    // ------------------------------------------------------------------
    // issue
    // ------------------------------------------------------------------

    fn issue(&mut self) {
        self.issue_inner(RecoveryScan::Scan);
    }

    /// The issue stage. [`RecoveryScan::Skip`] omits the recovery-buffer
    /// candidate walk — only legal when the caller has proven no member
    /// is selectable this cycle (the walk would inspect every member and
    /// issue none, mutating nothing); [`RecoveryScan::ScanTracked`]
    /// additionally records the buffer's next readiness horizon into the
    /// gated stepper's cache as a byproduct of the walk it was doing
    /// anyway. The reference `tick` always plain-scans.
    fn issue_inner(&mut self, scan: RecoveryScan) {
        if !self.legacy_scan {
            self.sched_drain_events();
            #[cfg(debug_assertions)]
            self.sched_cross_check();
        }
        if self.issue_blocked_at == Some(self.now) {
            // A replay squashed this cycle: selection is suppressed, and
            // the walk below never ran. Any horizon the caller wanted is
            // unknown — force a rescan next cycle.
            if scan == RecoveryScan::ScanTracked {
                self.recovery_ready_at = Cycle::ZERO;
            }
            return;
        }
        let mut width = self.cfg.issue_width;
        let mut alu = self.cfg.alu_ports;
        let mut muldiv = self.cfg.muldiv_ports;
        let mut fp = self.cfg.fp_ports;
        let mut fpmd = self.cfg.fpmuldiv_ports;
        let mut mem_slots = self.cfg.ldst_ports + self.cfg.store_only_ports;
        let mut load_slots = self.cfg.max_loads_per_cycle();
        let mut cycle_state = IssueCycleState::default();
        let mut issued_group: Vec<SeqNum> = self.group_pool.get();

        // Recovery buffer first (Morancho-style): scan oldest group first,
        // skipping not-ready entries. (A literal single-group select can
        // livelock once several replay events interleave group ages, so
        // the buffer carries per-entry ready bits instead — see DESIGN.md.)
        let mut replay_candidates = std::mem::take(&mut self.scratch_candidates);
        replay_candidates.clear();
        if scan != RecoveryScan::Skip {
            replay_candidates.extend(self.recovery.iter().flat_map(|(_, g)| g.iter().copied()));
        }
        let tracked = scan == RecoveryScan::ScanTracked;
        // Next readiness horizon, rebuilt during a tracked walk. Members
        // that issue leave the buffer and contribute nothing; a member
        // that is ready but loses arbitration (width/ports) folds a
        // past cycle in, forcing a rescan next cycle. Exact only when
        // nothing issues this cycle — any issue can move wake times,
        // which re-dirties the cache anyway (see `tick_fast`).
        let mut horizon = Cycle::NEVER;
        let mut replayed_any = false;
        for &seq in &replay_candidates {
            if width == 0 {
                // Remaining members unexamined; their bounds are unknown.
                horizon = Cycle::ZERO;
                break;
            }
            if tracked {
                match self.replay_ready_at(seq) {
                    None => continue,
                    Some(at) if at > self.now => {
                        horizon = horizon.min(at);
                        continue;
                    }
                    Some(at) => horizon = horizon.min(at),
                }
            } else if !self.ready_to_issue(seq) {
                continue;
            }
            if !Self::take_ports(
                self.entry(seq).expect("entry").uop.class,
                self.now,
                &mut width,
                &mut alu,
                &mut muldiv,
                &mut fp,
                &mut fpmd,
                &mut mem_slots,
                &mut load_slots,
                &mut self.muldiv_free,
                &mut self.fpdiv_free,
            ) {
                continue;
            }
            self.do_issue(seq, &mut cycle_state);
            self.stats.recovery_buffer_replays += 1;
            self.replayed_marks.insert(seq);
            issued_group.push(seq);
            replayed_any = true;
        }
        if tracked {
            self.recovery_ready_at = horizon;
        }
        if replayed_any {
            // Drop the issued µ-ops from their groups: O(total members)
            // via the scratch bitset (a `contains` against the issued
            // list would be quadratic in the replay-storm worst case).
            let marks = &self.replayed_marks;
            for (_, group) in &mut self.recovery {
                group.retain(|s| !marks.contains(*s));
            }
            // Only recovery issues are in the group so far.
            for &seq in &issued_group {
                self.replayed_marks.remove(seq);
            }
            while let Some(pos) = self.recovery.iter().position(|(_, g)| g.is_empty()) {
                if let Some((_, g)) = self.recovery.remove(pos) {
                    self.group_pool.put(g);
                }
            }
        }

        // Scheduler: oldest-first selection over IQ-resident µ-ops. The
        // event-driven path pulls issue-width-sized batches off the ready
        // bitmap (age-ordered by construction), resuming past each batch
        // until the width is spent — the ready set can be IQ-sized, and
        // collecting all of it per cycle would dwarf the selection
        // itself. Batching is sound because nothing inside the selection
        // loop can *set* a ready bit (`sched_register` of a stale
        // candidate re-parks it; issue clears bits), so resuming after
        // the last processed age sees exactly the survivors a single
        // full collection would have. The legacy path rebuilds the whole
        // candidate list by scanning the ROB. Both reuse the scratch
        // buffer.
        if width > 0 {
            /// Ready entries pulled per batch: comfortably above the
            /// 6-wide issue width, small enough to keep the common case
            /// at one batch.
            const SELECT_BATCH: usize = 16;
            let mut first_iq_issue = true;
            let mut candidates = std::mem::take(&mut replay_candidates);
            let base = self.rob.front().map(|e| e.seq);
            let mut consumed = 0u64;
            'select: loop {
                candidates.clear();
                if self.legacy_scan {
                    candidates.extend(self.rob.iter().filter(|e| e.is_iq_waiting()).map(|e| e.seq));
                } else if self.sched.ready_len() > 0 {
                    if let Some(base) = base {
                        let span = self.rob.len() as u64;
                        if consumed < span {
                            self.sched.collect_ready_capped(
                                SeqNum::new(base.get() + consumed),
                                (span - consumed) as usize,
                                SELECT_BATCH,
                                &mut candidates,
                            );
                        }
                    }
                }
                let Some(&last) = candidates.last() else {
                    break;
                };
                for &seq in &candidates {
                    if width == 0 {
                        break 'select;
                    }
                    if self.legacy_scan {
                        if !self.ready_to_issue(seq) {
                            continue;
                        }
                    } else {
                        // Lazy invalidation: a ready bit may have gone
                        // stale since it was set (producer squashed,
                        // wakeup revised later, store dependence
                        // re-armed). Re-verify and re-park on mismatch —
                        // `sched_register` re-derives the same conditions
                        // `ready_to_issue` checks, so a not-ready entry
                        // can never re-mark itself ready.
                        let live = self.entry(seq).is_some_and(RobEntry::is_iq_waiting);
                        debug_assert!(live, "ready bit on non-IQ-waiting µ-op {seq}");
                        if !live || !self.ready_to_issue(seq) {
                            self.sched_register(seq);
                            continue;
                        }
                    }
                    if !Self::take_ports(
                        self.entry(seq).expect("entry").uop.class,
                        self.now,
                        &mut width,
                        &mut alu,
                        &mut muldiv,
                        &mut fp,
                        &mut fpmd,
                        &mut mem_slots,
                        &mut load_slots,
                        &mut self.muldiv_free,
                        &mut self.fpdiv_free,
                    ) {
                        continue;
                    }
                    self.do_issue(seq, &mut cycle_state);
                    if first_iq_issue {
                        // The oldest ready IQ entry this cycle:
                        // QOLD-critical.
                        self.entry_mut(seq).expect("just issued").was_iq_oldest = true;
                        first_iq_issue = false;
                    }
                    issued_group.push(seq);
                }
                if self.legacy_scan {
                    break;
                }
                // Resume the next batch just past the last processed age.
                let head = base.expect("candidates imply a ROB head");
                consumed = last.get() + 1 - head.get();
            }
            replay_candidates = candidates;
        }
        self.scratch_candidates = replay_candidates;

        if !issued_group.is_empty() {
            self.inflight.push_back((self.now, issued_group));
        } else {
            self.group_pool.put(issued_group);
        }
    }

    /// Source wakeup + memory-dependence readiness.
    fn ready_to_issue(&self, seq: SeqNum) -> bool {
        let e = self.entry(seq).unwrap_or_else(|| {
            panic!(
                "stale seq {seq} at {}: rob base {:?} len {} recovery {:?}",
                self.now,
                self.rob.front().map(|e| e.seq),
                self.rob.len(),
                self.recovery
                    .iter()
                    .map(|(c, g)| (*c, g.len()))
                    .collect::<Vec<_>>()
            )
        });
        for s in e.srcs.iter().flatten() {
            if self.rename.wake_at(*s) > self.now {
                return false;
            }
        }
        if let Some(dep) = e.store_dep {
            if let Some(store) = self.entry(dep) {
                if store.uop.class.is_store() && !store.store_executed {
                    return false;
                }
            }
        }
        true
    }

    /// Port/unit arbitration. Returns false if the µ-op cannot issue this
    /// cycle for structural reasons.
    #[allow(clippy::too_many_arguments)]
    fn take_ports(
        class: OpClass,
        now: Cycle,
        width: &mut u32,
        alu: &mut u32,
        muldiv: &mut u32,
        fp: &mut u32,
        fpmd: &mut u32,
        mem_slots: &mut u32,
        load_slots: &mut u32,
        muldiv_free: &mut Cycle,
        fpdiv_free: &mut [Cycle; 2],
    ) -> bool {
        debug_assert!(*width > 0);
        match class {
            OpClass::IntAlu | OpClass::Branch(_) => {
                if *alu == 0 {
                    return false;
                }
                *alu -= 1;
            }
            OpClass::IntMul | OpClass::IntDiv => {
                if *muldiv == 0 || *muldiv_free > now {
                    return false;
                }
                *muldiv -= 1;
                if class == OpClass::IntDiv {
                    *muldiv_free = now + class.base_latency();
                }
            }
            OpClass::FpAlu => {
                if *fp == 0 {
                    return false;
                }
                *fp -= 1;
            }
            OpClass::FpMul | OpClass::FpDiv => {
                if *fpmd == 0 {
                    return false;
                }
                let Some(port) = fpdiv_free.iter().position(|&f| f <= now) else {
                    return false;
                };
                *fpmd -= 1;
                if class == OpClass::FpDiv {
                    fpdiv_free[port] = now + class.base_latency();
                }
            }
            OpClass::Load => {
                if *mem_slots == 0 || *load_slots == 0 {
                    return false;
                }
                *mem_slots -= 1;
                *load_slots -= 1;
            }
            OpClass::Store => {
                if *mem_slots == 0 {
                    return false;
                }
                *mem_slots -= 1;
            }
        }
        *width -= 1;
        true
    }

    /// Issues one µ-op: bookkeeping, wakeup speculation, stats.
    fn do_issue(&mut self, seq: SeqNum, cycle_state: &mut IssueCycleState) {
        let delay = self.delay;
        let now = self.now;
        let load_to_use = self.cfg.l1d_load_to_use;

        // Issued µ-ops leave the ready set; any parked reference is stale.
        self.sched_forget(seq);
        // Copy out the (all-`Copy`) fields issue reads — no `RobEntry`
        // clone on the hot path.
        let (uop, wrong_path, dst, srcs, in_recovery, times_issued) = {
            let e = self.entry(seq).expect("entry");
            (
                e.uop,
                e.wrong_path,
                e.dst,
                e.srcs,
                e.in_recovery,
                e.times_issued,
            )
        };
        self.stats.issued_total += 1;
        if S::ENABLED {
            self.sink.record(TraceEvent::Issue {
                cycle: now,
                seq,
                from_recovery: in_recovery,
            });
        }
        let first_issue = times_issued == 0;
        if first_issue {
            self.stats.unique_issued += 1;
            if wrong_path {
                self.stats.wrong_path_issued += 1;
            }
        }
        // Banked-PRF read-port arbitration (§4.2): a µ-op whose issue
        // group oversubscribes a bank's read ports is delayed one cycle —
        // discovered at register read, after its dependents were woken.
        let mut prf_delay = 0u8;
        if let Some(pb) = self.cfg.prf_banking {
            for src in srcs.iter().flatten() {
                let bank = src.reg.index() % pb.banks as usize;
                let reads = &mut cycle_state.prf_reads[src.class.index()][bank];
                *reads += 1;
                if u32::from(*reads) > pb.read_ports_per_bank {
                    prf_delay = 1;
                }
            }
        }
        // Wakeup speculation for the destination.
        if let Some((dst, _)) = dst {
            match uop.class {
                OpClass::Load => {
                    // Degradation fallback: while a replay storm is being
                    // ridden out, wake dependents conservatively no matter
                    // what the policy says (they pay the delay but cannot
                    // replay on this load).
                    let decision = if self.degraded() {
                        WakeupDecision::Conservative
                    } else {
                        self.engine.decide(uop.pc)
                    };
                    cycle_state.loads_issued += 1;
                    let shifted = match self.cfg.shift_policy {
                        ShiftPolicy::Off => false,
                        ShiftPolicy::Always => cycle_state.loads_issued == 2,
                        ShiftPolicy::Predicted => {
                            // Shift only if this load and the group's
                            // first load are confidently predicted to hit
                            // the same bank (Yoaz-style).
                            let my_pred = self.bank_pred.predict(uop.pc);
                            let conflict = cycle_state.loads_issued == 2
                                && match (cycle_state.first_load_bank, my_pred) {
                                    (Some(a), Some(b)) => a == b,
                                    _ => false,
                                };
                            if cycle_state.loads_issued == 1 {
                                cycle_state.first_load_bank = my_pred;
                            }
                            conflict
                        }
                    };
                    match decision {
                        WakeupDecision::Speculative => {
                            let wake = now + load_to_use + if shifted { 1 } else { 0 };
                            self.rename.set_wake(dst, wake);
                            if S::ENABLED {
                                self.sink.record(TraceEvent::SpecWakeup {
                                    cycle: now,
                                    seq,
                                    wake,
                                });
                            }
                        }
                        WakeupDecision::Conservative => {
                            self.rename.set_wake(dst, Cycle::NEVER);
                        }
                    }
                    self.rename.set_avail(dst, Cycle::NEVER, None);
                }
                class => {
                    let lat = class.base_latency();
                    // Dependents are woken on the bypass schedule; a PRF
                    // read-port delay is only discovered later, so they
                    // replay against the delayed availability.
                    self.rename.set_wake(dst, now + lat);
                    let cause = (prf_delay > 0).then_some(ReplayCause::PrfConflict);
                    self.rename
                        .set_avail(dst, now + delay + 1 + lat + u64::from(prf_delay), cause);
                }
            }
        }

        let em = self.entry_mut(seq).expect("entry");
        em.state = UopState::InFlight;
        em.issue_cycle = now;
        em.times_issued += 1;
        em.in_recovery = false;
        em.prf_delay = prf_delay;
        // Non-memory µ-ops release their IQ entry at (first) issue.
        if !em.uop.class.is_mem() && em.holds_iq {
            em.holds_iq = false;
            self.iq_used -= 1;
        }
    }

    // ------------------------------------------------------------------
    // dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        let mut dispatched = 0;
        let mut stalled = false;
        while dispatched < self.cfg.frontend_width {
            let Some(f) = self.frontend.front() else {
                break;
            };
            if f.ready_at > self.now {
                break;
            }
            // Structural resources.
            if self.rob.len() >= self.cfg.rob_entries as usize
                || self.iq_used >= self.cfg.iq_entries
            {
                stalled = true;
                break;
            }
            let class = f.uop.class;
            if class.is_load() && self.lq_used >= self.cfg.lq_entries {
                stalled = true;
                break;
            }
            if class.is_store() && self.sq_used >= self.cfg.sq_entries {
                stalled = true;
                break;
            }
            if let Some(d) = f.uop.dst {
                if self.rename.free_count(d.class) == 0 {
                    stalled = true;
                    break;
                }
            }
            let f = self.frontend.pop_front().expect("peeked");
            let seq = self.next_seq;
            self.next_seq = self.next_seq.next();
            let mut e = RobEntry::new(seq, f.uop, f.wrong_path);
            e.pred = f.pred;
            e.mispredicted = f.mispredicted;
            e.dir_wrong = f.dir_wrong;
            // Rename sources then destination (true dependencies only).
            for (i, s) in f.uop.srcs.iter().enumerate() {
                if let Some(s) = s {
                    e.srcs[i] = Some(self.rename.lookup(s.class, s.reg));
                }
            }
            if let Some(d) = f.uop.dst {
                let (new, prev) = self
                    .rename
                    .rename_dst(d.class, d.reg)
                    .expect("free list checked");
                e.dst = Some((new, prev));
            }
            // Memory-dependence prediction.
            if !f.wrong_path {
                if class.is_load() {
                    e.store_dep = self.store_sets.load_dependence(f.uop.pc);
                } else if class.is_store() {
                    e.store_dep = self.store_sets.on_store_dispatch(f.uop.pc, seq);
                }
            }
            if class.is_load() {
                self.lq_used += 1;
            }
            if class.is_store() {
                self.sq_used += 1;
            }
            e.holds_iq = true;
            self.iq_used += 1;
            if S::ENABLED {
                // The seq did not exist at fetch time, so the fetch event
                // is back-dated here: `ready_at` was stamped as
                // fetch-cycle + frontend depth at fetch.
                self.sink.record(TraceEvent::Fetch {
                    cycle: Cycle::new(f.ready_at.get().saturating_sub(self.cfg.frontend_depth())),
                    seq,
                    pc: e.uop.pc,
                    class: e.uop.class,
                    wrong_path: e.wrong_path,
                });
                self.sink.record(TraceEvent::Rename {
                    cycle: self.now,
                    seq,
                });
            }
            if let Some(qw) = Self::tracked_store_qw(&e) {
                self.store_ring.push_back((qw, seq));
            }
            self.rob.push_back(e);
            self.sched_register(seq);
            dispatched += 1;
        }
        if stalled && dispatched == 0 {
            self.stats.dispatch_stall_cycles += 1;
        }
    }

    // ------------------------------------------------------------------
    // fetch
    // ------------------------------------------------------------------

    fn next_correct_uop(&mut self) -> MicroOp {
        match self.pending_correct.take() {
            Some(u) => u,
            None => self.trace.next_uop(),
        }
    }

    fn fetch(&mut self) {
        if self.now < self.fetch_stall_until {
            return;
        }
        let mut fetched = 0;
        let mut taken_branches = 0;
        let mut cur_block: Option<u64> = None;
        let mut blocks = 1;
        let block_mask = !(self.cfg.fetch_block_bytes - 1);

        while fetched < self.cfg.frontend_width && self.frontend.len() < self.frontend_cap {
            // Obtain the next µ-op on the (predicted) fetch path.
            let (mut uop, wrong_path) = if self.wrong_path_mode {
                if !self.cfg.wrong_path {
                    break; // model without wrong-path fetch: just stall
                }
                (self.wp_gen.next_uop(), true)
            } else {
                let u = self.next_correct_uop();
                // Fetch-boundary validation: a malformed µ-op from the
                // trace source becomes a structured error here, before
                // any deeper stage could trip an internal `expect` on a
                // missing payload. Every `expect` on µ-op payloads past
                // this point (branch targets, memory addresses, load
                // destinations) is guaranteed by this gate.
                if let Err(reason) = u.validate() {
                    self.pending_error = Some(SimError::TraceInvalid {
                        pc: u.pc.get(),
                        reason,
                    });
                    return;
                }
                (u, false)
            };
            if wrong_path {
                if let Some(m) = &mut uop.mem {
                    // Retarget near a recent correct-path address.
                    self.wp_rng ^= self.wp_rng << 13;
                    self.wp_rng ^= self.wp_rng >> 7;
                    self.wp_rng ^= self.wp_rng << 17;
                    let base = self.recent_load_addrs[(self.wp_rng as usize) & 63];
                    let jitter = ((self.wp_rng >> 8) % 17) as i64 * 8 - 64;
                    m.addr = ss_types::Addr::new(base.offset(jitter).get() & !7);
                }
            } else if let (OpClass::Load, Some(m)) = (uop.class, &uop.mem) {
                self.recent_load_addrs[self.recent_load_idx & 63] = m.addr;
                self.recent_load_idx = self.recent_load_idx.wrapping_add(1);
            }

            // Fetch-block accounting.
            let block = uop.pc.get() & block_mask;
            match cur_block {
                None => cur_block = Some(block),
                Some(b) if b != block => {
                    blocks += 1;
                    if blocks > self.cfg.fetch_blocks_per_cycle {
                        // Does not fit this fetch cycle: put it back.
                        if wrong_path {
                            // regenerate next cycle from the same PC
                            self.wp_gen.redirect(uop.pc);
                        } else {
                            self.pending_correct = Some(uop);
                        }
                        break;
                    }
                    cur_block = Some(block);
                }
                _ => {}
            }

            // Instruction-cache access (once per block in spirit; modeled
            // per µ-op with line granularity inside the cache).
            let icache_extra = self.mem.icache_fetch(uop.pc, self.now);
            if icache_extra > 0 {
                self.fetch_stall_until = self.now + icache_extra;
            }

            let mut pred = None;
            let mut mispredicted = false;
            let mut dir_wrong = false;
            let mut predicted_taken = false;
            if uop.class.is_branch() {
                if wrong_path {
                    // Wrong-path branches are synthesized never-taken and
                    // do not consult or pollute the predictor tables (the
                    // history they would have inserted is restored at
                    // resolve anyway).
                    predicted_taken = false;
                } else {
                    let OpClass::Branch(kind) = uop.class else {
                        unreachable!()
                    };
                    let b = uop.branch.expect("branch payload");
                    let p = self.bpred.on_branch_fetch(uop.pc, kind, uop.next_pc());
                    predicted_taken = p.taken;
                    let actual_next = uop.successor_pc();
                    if p.next_pc != actual_next {
                        mispredicted = true;
                        dir_wrong = p.taken != b.taken;
                    }
                    pred = Some(p);
                }
            }

            let fetched_uop = FetchedUop {
                uop,
                wrong_path,
                ready_at: self.now + self.cfg.frontend_depth(),
                pred,
                mispredicted,
                dir_wrong,
            };
            let pred_next = fetched_uop.pred.map(|p| p.next_pc);
            self.frontend.push_back(fetched_uop);
            fetched += 1;

            if mispredicted {
                // Fetch diverges: follow the *predicted* path.
                self.wrong_path_mode = true;
                self.wp_gen
                    .redirect(pred_next.expect("mispredicted branch has prediction"));
                // `diverged` is recorded at dispatch (needs the seq).
            }
            if uop.class.is_branch() && predicted_taken {
                taken_branches += 1;
                if taken_branches > 1 {
                    break; // at most one taken branch per fetch cycle
                }
            }
        }
    }

    /// Flushes every µ-op younger than `branch_seq`: frontend, ROB tail
    /// (youngest-first rename unwind), recovery buffer, LSQ counters.
    fn flush_younger_than(&mut self, branch_seq: SeqNum) {
        // Everything in the frontend was fetched after the branch.
        self.frontend.clear();
        self.fetch_stall_until = Cycle::ZERO;
        while let Some(tail) = self.rob.back() {
            if tail.seq <= branch_seq {
                break;
            }
            let e = self.rob.pop_back().expect("tail exists");
            if Self::tracked_store_qw(&e).is_some() {
                let back = self.store_ring.pop_back();
                debug_assert_eq!(back.map(|(_, s)| s), Some(e.seq), "store ring out of sync");
            }
            if e.holds_iq {
                self.iq_used -= 1;
            }
            if e.uop.class.is_load() {
                self.lq_used -= 1;
            }
            if e.uop.class.is_store() {
                self.sq_used -= 1;
                if !e.wrong_path {
                    self.store_sets.on_store_complete(e.uop.pc, e.seq);
                }
            }
            if let Some(d) = e.uop.dst {
                let (new, prev) = e.dst.expect("renamed");
                self.rename.unwind(d.reg, new, prev);
            }
            // The refetched path reuses this sequence number: clear its
            // ready bit and stale every parked reference now.
            self.sched_forget(e.seq);
            if S::ENABLED {
                self.sink.record(TraceEvent::Flush {
                    cycle: self.now,
                    seq: e.seq,
                });
            }
        }
        // Sequence numbers index the ROB (contiguous); the refetched path
        // reuses the flushed range. Deferred revisions for unwound
        // registers are dropped lazily by the avail-reset guard.
        self.next_seq = branch_seq.next();
        // Purge stale seqs from replay structures (entries validate by
        // state, but keep the queues tidy).
        let last = self.rob.back().map(|e| e.seq);
        let valid = |s: &SeqNum| last.is_some_and(|l| *s <= l);
        for (_, g) in &mut self.recovery {
            g.retain(valid);
        }
        while let Some(pos) = self.recovery.iter().position(|(_, g)| g.is_empty()) {
            if let Some((_, g)) = self.recovery.remove(pos) {
                self.group_pool.put(g);
            }
        }
        for (_, g) in &mut self.inflight {
            g.retain(valid);
        }
    }
}

impl<T: TraceSource, S: TraceSink> std::fmt::Debug for Simulator<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("rob", &self.rob.len())
            .field("iq_used", &self.iq_used)
            .field("committed", &self.stats.committed_uops)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Checkpoint capture/restore.
// ---------------------------------------------------------------------------

/// Section tags for the [`ss_snapshot`] container. Tags are part of the
/// on-disk format: renumbering is a format break and must bump
/// [`ss_snapshot::SNAPSHOT_FORMAT_VERSION`].
pub mod sections {
    /// Core pipeline state: ROB, frontend, in-flight/recovery groups,
    /// occupancy counters, cycle/seq clocks, fault plan, and statistics.
    pub const CORE: u32 = 1;
    /// Workload engine position plus the wrong-path generator.
    pub const TRACE: u32 = 2;
    /// Branch predictor (direction tables, BTB, RAS, history).
    pub const BPRED: u32 = 3;
    /// Memory hierarchy (caches, MSHRs, banks, DRAM, prefetcher).
    pub const MEM: u32 = 4;
    /// Memory-dependence predictor (Store Sets).
    pub const MEMDEP: u32 = 5;
    /// Scheduling-policy engine and bank predictor.
    pub const SCHED: u32 = 6;
    /// Rename/scoreboard state and the event-driven ready queue.
    pub const RENAME: u32 = 7;
}

/// Fingerprint of a machine configuration, used to gate restores: a
/// snapshot is only loadable into a simulator built from the identical
/// [`SimConfig`].
pub fn config_fingerprint(cfg: &SimConfig) -> u64 {
    ss_types::persist::fnv1a64(format!("{cfg:?}").as_bytes())
}

fn section_of(tag: u32, fill: impl FnOnce(&mut Writer)) -> ss_snapshot::Section {
    let mut w = Writer::new();
    fill(&mut w);
    ss_snapshot::Section {
        tag,
        bytes: w.into_bytes(),
    }
}

fn corrupt(reason: impl Into<String>) -> SimError {
    SimError::SnapshotCorrupt {
        path: "<memory>".into(),
        reason: reason.into(),
    }
}

impl<T: TraceSource + PersistState, S: TraceSink> Simulator<T, S> {
    /// Serializes the complete architectural and microarchitectural state
    /// of the machine into a versioned snapshot. A [`Simulator`] built
    /// from the same [`SimConfig`] and restored from this snapshot
    /// produces bit-identical statistics to one that never stopped.
    ///
    /// Not captured (by design): the trace sink, an attached differential
    /// checker, and per-cycle scratch buffers (all empty between ticks).
    /// Capture at a quiescent point — after a `try_run_committed` call —
    /// never mid-`tick`.
    pub fn capture(&self) -> ss_snapshot::Snapshot {
        let core = section_of(sections::CORE, |w| {
            self.now.save(w);
            self.next_seq.save(w);
            self.rob.save(w);
            self.frontend.save(w);
            self.inflight.save(w);
            self.recovery.save(w);
            self.iq_used.save(w);
            self.lq_used.save(w);
            self.sq_used.save(w);
            self.replayed_marks.save_state(w);
            self.store_ring.save(w);
            self.muldiv_free.save(w);
            self.fpdiv_free.save(w);
            self.issue_blocked_at.save(w);
            self.wrong_path_mode.save(w);
            self.pending_correct.save(w);
            self.fetch_stall_until.save(w);
            self.last_commit_at.save(w);
            self.deferred_wakes.save(w);
            self.recent_load_addrs.save(w);
            self.recent_load_idx.save(w);
            self.wp_rng.save(w);
            self.fault_plan.save(w);
            self.degrade_until.save(w);
            self.degrade_window_start.save(w);
            self.degrade_window_replays.save(w);
            self.commit_ring.save(w);
            self.wakeup_bug_armed.save(w);
            self.wakeup_bug_fired.save(w);
            self.stats.save(w);
            self.memdep_violations.save(w);
        });
        let trace = section_of(sections::TRACE, |w| {
            self.trace.save_state(w);
            self.wp_gen.save_state(w);
        });
        let bpred = section_of(sections::BPRED, |w| self.bpred.save_state(w));
        let mem = section_of(sections::MEM, |w| self.mem.save_state(w));
        let memdep = section_of(sections::MEMDEP, |w| self.store_sets.save_state(w));
        let sched = section_of(sections::SCHED, |w| {
            self.engine.save_state(w);
            self.bank_pred.save_state(w);
        });
        let rename = section_of(sections::RENAME, |w| {
            self.rename.save_state(w);
            self.sched.save_state(w);
        });
        ss_snapshot::Snapshot::new(
            config_fingerprint(&self.cfg),
            vec![core, trace, bpred, mem, memdep, sched, rename],
        )
    }

    /// Restores the machine to the exact state [`Simulator::capture`]
    /// serialized. The simulator must have been built from the identical
    /// [`SimConfig`] (gated by the config fingerprint).
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotCorrupt`] on any config mismatch, missing
    /// section, or malformed section body. On error the simulator state
    /// is unspecified and it must not be used further.
    pub fn restore(&mut self, snap: &ss_snapshot::Snapshot) -> Result<(), SimError> {
        let expected = config_fingerprint(&self.cfg);
        if snap.config_fingerprint != expected {
            return Err(corrupt(format!(
                "config fingerprint {:016x} does not match this machine ({expected:016x})",
                snap.config_fingerprint
            )));
        }
        let mut r = self.section_reader(snap, sections::CORE)?;
        self.restore_core(&mut r)
            .and_then(|()| Self::finish(r))
            .map_err(|e| corrupt(format!("core section: {e}")))?;

        let mut r = self.section_reader(snap, sections::TRACE)?;
        self.trace
            .restore_state(&mut r)
            .and_then(|()| self.wp_gen.restore_state(&mut r))
            .and_then(|()| Self::finish(r))
            .map_err(|e| corrupt(format!("trace section: {e}")))?;

        let mut r = self.section_reader(snap, sections::BPRED)?;
        self.bpred
            .restore_state(&mut r)
            .and_then(|()| Self::finish(r))
            .map_err(|e| corrupt(format!("branch-predictor section: {e}")))?;

        let mut r = self.section_reader(snap, sections::MEM)?;
        self.mem
            .restore_state(&mut r)
            .and_then(|()| Self::finish(r))
            .map_err(|e| corrupt(format!("memory section: {e}")))?;

        let mut r = self.section_reader(snap, sections::MEMDEP)?;
        self.store_sets
            .restore_state(&mut r)
            .and_then(|()| Self::finish(r))
            .map_err(|e| corrupt(format!("memdep section: {e}")))?;

        let mut r = self.section_reader(snap, sections::SCHED)?;
        self.engine
            .restore_state(&mut r)
            .and_then(|()| self.bank_pred.restore_state(&mut r))
            .and_then(|()| Self::finish(r))
            .map_err(|e| corrupt(format!("scheduler section: {e}")))?;

        let mut r = self.section_reader(snap, sections::RENAME)?;
        self.rename
            .restore_state(&mut r)
            .and_then(|()| self.sched.restore_state(&mut r))
            .and_then(|()| Self::finish(r))
            .map_err(|e| corrupt(format!("rename section: {e}")))?;

        // Per-cycle scratch is empty between ticks by construction; clear
        // it so a restore into a used simulator matches a fresh one.
        self.scratch_candidates.clear();
        self.scratch_woken.clear();
        self.scratch_squash.clear();
        self.pending_error = None;
        // The gated-stepper cache describes the pre-restore machine.
        self.step_dirty = true;
        Ok(())
    }

    fn section_reader<'s>(
        &self,
        snap: &'s ss_snapshot::Snapshot,
        tag: u32,
    ) -> Result<Reader<'s>, SimError> {
        snap.section(tag)
            .map(Reader::new)
            .ok_or_else(|| corrupt(format!("missing section {tag}")))
    }

    fn finish(r: Reader<'_>) -> Result<(), DecodeError> {
        if r.is_finished() {
            Ok(())
        } else {
            Err(r.err(format_args!("{} trailing bytes", r.remaining())))
        }
    }

    fn restore_core(&mut self, r: &mut Reader<'_>) -> Result<(), DecodeError> {
        self.now = Persist::load(r)?;
        self.next_seq = Persist::load(r)?;
        self.rob = Persist::load(r)?;
        self.frontend = Persist::load(r)?;
        self.inflight = Persist::load(r)?;
        self.recovery = Persist::load(r)?;
        self.iq_used = Persist::load(r)?;
        self.lq_used = Persist::load(r)?;
        self.sq_used = Persist::load(r)?;
        self.replayed_marks.restore_state(r)?;
        self.store_ring = Persist::load(r)?;
        self.muldiv_free = Persist::load(r)?;
        self.fpdiv_free = Persist::load(r)?;
        self.issue_blocked_at = Persist::load(r)?;
        self.wrong_path_mode = Persist::load(r)?;
        self.pending_correct = Persist::load(r)?;
        self.fetch_stall_until = Persist::load(r)?;
        self.last_commit_at = Persist::load(r)?;
        self.deferred_wakes = Persist::load(r)?;
        self.recent_load_addrs = Persist::load(r)?;
        self.recent_load_idx = Persist::load(r)?;
        self.wp_rng = Persist::load(r)?;
        self.fault_plan = Persist::load(r)?;
        self.degrade_until = Persist::load(r)?;
        self.degrade_window_start = Persist::load(r)?;
        self.degrade_window_replays = Persist::load(r)?;
        self.commit_ring = Persist::load(r)?;
        self.wakeup_bug_armed = Persist::load(r)?;
        self.wakeup_bug_fired = Persist::load(r)?;
        self.stats = Persist::load(r)?;
        self.memdep_violations = Persist::load(r)?;
        Ok(())
    }
}

/// Reads and verifies a snapshot file, mapping every failure to the
/// simulator's typed error space: a version stamp from another build is
/// [`SimError::SnapshotVersionMismatch`], everything else (damage,
/// identity mismatch, I/O) is [`SimError::SnapshotCorrupt`]. Corrupt
/// files are quarantined to `<path>.corrupt` by the read layer.
pub fn load_snapshot(path: &std::path::Path) -> Result<ss_snapshot::Snapshot, SimError> {
    ss_snapshot::read_verified(path).map_err(|e| match e {
        ss_snapshot::SnapshotError::VersionMismatch { found, expected } => {
            SimError::SnapshotVersionMismatch {
                path: path.display().to_string(),
                found,
                expected,
            }
        }
        other => SimError::SnapshotCorrupt {
            path: path.display().to_string(),
            reason: other.to_string(),
        },
    })
}
