//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] perturbs the memory timing the pipeline observes
//! during chosen cycle windows — without touching the cache state itself
//! — so tests can drive the machine into the corner cases the
//! fault-tolerance layer exists for: latency spikes (a load's data
//! arrives much later than its hit/miss signal implied), bank-conflict
//! bursts, and replay storms (every load in the window looks late to its
//! speculatively-woken dependents). Injected faults are counted in
//! [`SimStats::faults_injected`](ss_types::SimStats) and, when the
//! machine is configured with a
//! [`DegradeConfig`](ss_types::DegradeConfig), a detected replay storm
//! makes the scheduler fall back to non-speculative wakeup until the
//! storm passes.

use ss_types::{Cycle, ReplayCause, SimError};

/// What an active fault window does to each correct-path load that
/// executes inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The load's data arrives `extra_cycles` later than the hierarchy
    /// reported (models a transient downstream stall).
    LatencySpike {
        /// Additional cycles before the loaded value is available.
        extra_cycles: u64,
    },
    /// Every load pays a bank-conflict penalty (models pathological
    /// address interleaving saturating one bank).
    BankConflictBurst {
        /// Conflict penalty per load in cycles.
        delay_cycles: u64,
    },
    /// Every load's value arrives just late enough that dependents woken
    /// on the L1-hit schedule replay — the sustained replay storm the
    /// graceful-degradation mode detects.
    ReplayStorm,
}

/// One contiguous window of injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First cycle the fault is active.
    pub start: Cycle,
    /// Number of cycles the window lasts.
    pub duration: u64,
    /// The perturbation applied inside the window.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Whether the window is active at `now`.
    pub fn active_at(&self, now: Cycle) -> bool {
        now >= self.start && now.since(self.start) < self.duration
    }
}

/// A deterministic schedule of fault windows for one simulation.
///
/// Windows are validated as they are added: a zero-duration window would
/// silently inject nothing, and overlapping windows would silently
/// shadow each other (only the first active window applies), so both are
/// construction errors. The builder methods stay chainable by recording
/// the first error instead of returning it; [`FaultPlan::validate`]
/// (called by `Simulator::set_fault_plan`) surfaces it as
/// [`SimError::ConfigInvalid`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
    error: Option<String>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a latency-spike window.
    pub fn latency_spike(self, start: u64, duration: u64, extra_cycles: u64) -> Self {
        self.add_window(FaultWindow {
            start: Cycle::new(start),
            duration,
            kind: FaultKind::LatencySpike { extra_cycles },
        })
    }

    /// Adds a bank-conflict-burst window.
    pub fn bank_conflict_burst(self, start: u64, duration: u64, delay_cycles: u64) -> Self {
        self.add_window(FaultWindow {
            start: Cycle::new(start),
            duration,
            kind: FaultKind::BankConflictBurst { delay_cycles },
        })
    }

    /// Adds a replay-storm window.
    pub fn replay_storm(self, start: u64, duration: u64) -> Self {
        self.add_window(FaultWindow {
            start: Cycle::new(start),
            duration,
            kind: FaultKind::ReplayStorm,
        })
    }

    /// Validates and records one window, remembering the first error so
    /// the chainable builder style keeps working.
    fn add_window(mut self, w: FaultWindow) -> Self {
        if self.error.is_some() {
            return self;
        }
        if w.duration == 0 {
            self.error = Some(format!(
                "fault window at cycle {} has zero duration (would silently inject nothing)",
                w.start.get()
            ));
            return self;
        }
        if let Some(prev) = self.windows.iter().find(|p| {
            p.start.get() < w.start.get() + w.duration && w.start.get() < p.start.get() + p.duration
        }) {
            self.error = Some(format!(
                "fault window [{}, {}) overlaps window [{}, {}) (only the first active window \
                 would apply)",
                w.start.get(),
                w.start.get() + w.duration,
                prev.start.get(),
                prev.start.get() + prev.duration
            ));
            return self;
        }
        self.windows.push(w);
        self
    }

    /// Checks the plan is well-formed, surfacing the first builder error
    /// (zero-duration or overlapping window) as
    /// [`SimError::ConfigInvalid`].
    pub fn validate(&self) -> Result<(), SimError> {
        match &self.error {
            Some(msg) => Err(SimError::ConfigInvalid(msg.clone())),
            None => Ok(()),
        }
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// The perturbation (extra latency, attributed replay cause) a
    /// correct-path load executing at `now` suffers, if any window is
    /// active. Windows never overlap (validated at construction), so at
    /// most one window matches.
    pub(crate) fn load_fault(&self, now: Cycle) -> Option<(u64, ReplayCause)> {
        self.windows
            .iter()
            .find(|w| w.active_at(now))
            .map(|w| match w.kind {
                FaultKind::LatencySpike { extra_cycles } => (extra_cycles, ReplayCause::L1Miss),
                FaultKind::BankConflictBurst { delay_cycles } => {
                    (delay_cycles, ReplayCause::BankConflict)
                }
                // Late enough to defeat a hit-schedule wakeup at any of the
                // paper's issue-to-execute delays (0–6), short enough to stay
                // a storm of small replays rather than a stall.
                FaultKind::ReplayStorm => (12, ReplayCause::L1Miss),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::new();
        assert_eq!(p.load_fault(Cycle::new(100)), None);
    }

    #[test]
    fn window_bounds_are_half_open() {
        let p = FaultPlan::new().latency_spike(100, 50, 20);
        assert_eq!(p.load_fault(Cycle::new(99)), None);
        assert_eq!(
            p.load_fault(Cycle::new(100)),
            Some((20, ReplayCause::L1Miss))
        );
        assert_eq!(
            p.load_fault(Cycle::new(149)),
            Some((20, ReplayCause::L1Miss))
        );
        assert_eq!(p.load_fault(Cycle::new(150)), None);
    }

    #[test]
    fn kinds_map_to_expected_causes() {
        let p = FaultPlan::new()
            .bank_conflict_burst(0, 10, 3)
            .replay_storm(20, 10);
        assert_eq!(
            p.load_fault(Cycle::new(5)),
            Some((3, ReplayCause::BankConflict))
        );
        let (extra, cause) = p.load_fault(Cycle::new(25)).unwrap();
        assert_eq!(cause, ReplayCause::L1Miss);
        assert!(
            extra > 6,
            "storm residue must defeat the largest delay sweep point"
        );
    }

    #[test]
    fn zero_duration_window_is_rejected() {
        let p = FaultPlan::new().latency_spike(100, 0, 20);
        let err = p.validate().unwrap_err();
        assert!(matches!(err, SimError::ConfigInvalid(_)));
        assert!(err.to_string().contains("zero duration"), "{err}");
        assert!(p.windows().is_empty(), "bad window must not be recorded");
    }

    #[test]
    fn overlapping_windows_are_rejected() {
        let p = FaultPlan::new()
            .latency_spike(0, 100, 7)
            .replay_storm(50, 100);
        let err = p.validate().unwrap_err();
        assert!(matches!(err, SimError::ConfigInvalid(_)));
        assert!(err.to_string().contains("overlaps"), "{err}");
        // The first window survives; the overlapping one is dropped.
        assert_eq!(p.windows().len(), 1);
    }

    #[test]
    fn adjacent_windows_are_fine() {
        let p = FaultPlan::new()
            .latency_spike(0, 50, 7)
            .replay_storm(50, 50)
            .bank_conflict_burst(100, 50, 3);
        assert!(p.validate().is_ok());
        assert_eq!(p.windows().len(), 3);
    }

    #[test]
    fn first_error_sticks_across_later_valid_windows() {
        let p = FaultPlan::new()
            .latency_spike(0, 0, 7) // invalid: zero duration
            .replay_storm(50, 100); // valid, but the plan stays poisoned
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("zero duration"), "{err}");
    }
}

impl ss_types::Persist for FaultKind {
    fn save(&self, w: &mut ss_types::Writer) {
        match self {
            FaultKind::LatencySpike { extra_cycles } => {
                0u8.save(w);
                extra_cycles.save(w);
            }
            FaultKind::BankConflictBurst { delay_cycles } => {
                1u8.save(w);
                delay_cycles.save(w);
            }
            FaultKind::ReplayStorm => 2u8.save(w),
        }
    }
    fn load(r: &mut ss_types::Reader<'_>) -> Result<Self, ss_types::DecodeError> {
        match u8::load(r)? {
            0 => Ok(FaultKind::LatencySpike {
                extra_cycles: u64::load(r)?,
            }),
            1 => Ok(FaultKind::BankConflictBurst {
                delay_cycles: u64::load(r)?,
            }),
            2 => Ok(FaultKind::ReplayStorm),
            t => Err(r.err(format_args!("invalid FaultKind tag {t}"))),
        }
    }
}

ss_types::impl_persist!(FaultWindow {
    start,
    duration,
    kind
});
ss_types::impl_persist!(FaultPlan { windows, error });
