//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] perturbs the memory timing the pipeline observes
//! during chosen cycle windows — without touching the cache state itself
//! — so tests can drive the machine into the corner cases the
//! fault-tolerance layer exists for: latency spikes (a load's data
//! arrives much later than its hit/miss signal implied), bank-conflict
//! bursts, and replay storms (every load in the window looks late to its
//! speculatively-woken dependents). Injected faults are counted in
//! [`SimStats::faults_injected`](ss_types::SimStats) and, when the
//! machine is configured with a
//! [`DegradeConfig`](ss_types::DegradeConfig), a detected replay storm
//! makes the scheduler fall back to non-speculative wakeup until the
//! storm passes.

use ss_types::{Cycle, ReplayCause, SimError};
use std::fmt;
use std::str::FromStr;

/// What an active fault window does to each correct-path load that
/// executes inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The load's data arrives `extra_cycles` later than the hierarchy
    /// reported (models a transient downstream stall).
    LatencySpike {
        /// Additional cycles before the loaded value is available.
        extra_cycles: u64,
    },
    /// Every load pays a bank-conflict penalty (models pathological
    /// address interleaving saturating one bank).
    BankConflictBurst {
        /// Conflict penalty per load in cycles.
        delay_cycles: u64,
    },
    /// Every load's value arrives just late enough that dependents woken
    /// on the L1-hit schedule replay — the sustained replay storm the
    /// graceful-degradation mode detects.
    ReplayStorm,
}

/// One contiguous window of injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First cycle the fault is active.
    pub start: Cycle,
    /// Number of cycles the window lasts.
    pub duration: u64,
    /// The perturbation applied inside the window.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Whether the window is active at `now`.
    pub fn active_at(&self, now: Cycle) -> bool {
        now >= self.start && now.since(self.start) < self.duration
    }
}

/// A deterministic schedule of fault windows for one simulation.
///
/// Windows are validated as they are added: a zero-duration window would
/// silently inject nothing, and overlapping windows would silently
/// shadow each other (only the first active window applies), so both are
/// construction errors. The builder methods stay chainable by recording
/// the first error instead of returning it; [`FaultPlan::validate`]
/// (called by `Simulator::set_fault_plan`) surfaces it as
/// [`SimError::ConfigInvalid`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
    error: Option<String>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a latency-spike window.
    pub fn latency_spike(self, start: u64, duration: u64, extra_cycles: u64) -> Self {
        self.add_window(FaultWindow {
            start: Cycle::new(start),
            duration,
            kind: FaultKind::LatencySpike { extra_cycles },
        })
    }

    /// Adds a bank-conflict-burst window.
    pub fn bank_conflict_burst(self, start: u64, duration: u64, delay_cycles: u64) -> Self {
        self.add_window(FaultWindow {
            start: Cycle::new(start),
            duration,
            kind: FaultKind::BankConflictBurst { delay_cycles },
        })
    }

    /// Adds a replay-storm window.
    pub fn replay_storm(self, start: u64, duration: u64) -> Self {
        self.add_window(FaultWindow {
            start: Cycle::new(start),
            duration,
            kind: FaultKind::ReplayStorm,
        })
    }

    /// Validates and records one window, remembering the first error so
    /// the chainable builder style keeps working.
    fn add_window(mut self, w: FaultWindow) -> Self {
        if self.error.is_some() {
            return self;
        }
        if w.duration == 0 {
            self.error = Some(format!(
                "fault window at cycle {} has zero duration (would silently inject nothing)",
                w.start.get()
            ));
            return self;
        }
        if let Some(prev) = self.windows.iter().find(|p| {
            p.start.get() < w.start.get() + w.duration && w.start.get() < p.start.get() + p.duration
        }) {
            self.error = Some(format!(
                "fault window [{}, {}) overlaps window [{}, {}) (only the first active window \
                 would apply)",
                w.start.get(),
                w.start.get() + w.duration,
                prev.start.get(),
                prev.start.get() + prev.duration
            ));
            return self;
        }
        self.windows.push(w);
        self
    }

    /// Checks the plan is well-formed, surfacing the first builder error
    /// (zero-duration or overlapping window) as
    /// [`SimError::ConfigInvalid`].
    pub fn validate(&self) -> Result<(), SimError> {
        match &self.error {
            Some(msg) => Err(SimError::ConfigInvalid(msg.clone())),
            None => Ok(()),
        }
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// The perturbation (extra latency, attributed replay cause) a
    /// correct-path load executing at `now` suffers, if any window is
    /// active. Windows never overlap (validated at construction), so at
    /// most one window matches.
    pub(crate) fn load_fault(&self, now: Cycle) -> Option<(u64, ReplayCause)> {
        self.windows
            .iter()
            .find(|w| w.active_at(now))
            .map(|w| match w.kind {
                FaultKind::LatencySpike { extra_cycles } => (extra_cycles, ReplayCause::L1Miss),
                FaultKind::BankConflictBurst { delay_cycles } => {
                    (delay_cycles, ReplayCause::BankConflict)
                }
                // Late enough to defeat a hit-schedule wakeup at any of the
                // paper's issue-to-execute delays (0–6), short enough to stay
                // a storm of small replays rather than a stall.
                FaultKind::ReplayStorm => (12, ReplayCause::L1Miss),
            })
    }
}

/// Canonical single-token encoding, one window per comma-separated
/// entry: `spike@{start}x{dur}+{extra}`, `bank@{start}x{dur}+{delay}`,
/// `storm@{start}x{dur}`. An empty plan renders as the empty string; a
/// plan carrying a construction error renders as `<invalid>` (which
/// [`FromStr`] rejects). Whitespace-free by construction, so the token
/// embeds directly in the `RunRequest` wire encoding.
impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.error.is_some() {
            return write!(f, "<invalid>");
        }
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            let (start, dur) = (w.start.get(), w.duration);
            match w.kind {
                FaultKind::LatencySpike { extra_cycles } => {
                    write!(f, "spike@{start}x{dur}+{extra_cycles}")?
                }
                FaultKind::BankConflictBurst { delay_cycles } => {
                    write!(f, "bank@{start}x{dur}+{delay_cycles}")?
                }
                FaultKind::ReplayStorm => write!(f, "storm@{start}x{dur}")?,
            }
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::new();
        if s.is_empty() {
            return Ok(plan);
        }
        for entry in s.split(',') {
            let (tag, rest) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault window `{entry}`: expected `kind@start...`"))?;
            let bad = |what: &str| format!("fault window `{entry}`: {what}");
            let (start_dur, param) = match rest.split_once('+') {
                Some((sd, p)) => (sd, Some(p)),
                None => (rest, None),
            };
            let (start, dur) = start_dur
                .split_once('x')
                .ok_or_else(|| bad("expected `{start}x{duration}`"))?;
            let start: u64 = start.parse().map_err(|_| bad("bad start cycle"))?;
            let dur: u64 = dur.parse().map_err(|_| bad("bad duration"))?;
            let param: Option<u64> = match param {
                Some(p) => Some(p.parse().map_err(|_| bad("bad parameter"))?),
                None => None,
            };
            plan = match (tag, param) {
                ("spike", Some(extra)) => plan.latency_spike(start, dur, extra),
                ("bank", Some(delay)) => plan.bank_conflict_burst(start, dur, delay),
                ("storm", None) => plan.replay_storm(start, dur),
                ("spike" | "bank", None) => return Err(bad("missing `+param`")),
                ("storm", Some(_)) => return Err(bad("storm takes no parameter")),
                _ => return Err(bad("unknown kind (expected spike|bank|storm)")),
            };
        }
        // Surface builder errors (zero duration, overlap) as parse errors
        // so a parsed plan is always valid.
        plan.validate().map_err(|e| e.to_string())?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::new();
        assert_eq!(p.load_fault(Cycle::new(100)), None);
    }

    #[test]
    fn window_bounds_are_half_open() {
        let p = FaultPlan::new().latency_spike(100, 50, 20);
        assert_eq!(p.load_fault(Cycle::new(99)), None);
        assert_eq!(
            p.load_fault(Cycle::new(100)),
            Some((20, ReplayCause::L1Miss))
        );
        assert_eq!(
            p.load_fault(Cycle::new(149)),
            Some((20, ReplayCause::L1Miss))
        );
        assert_eq!(p.load_fault(Cycle::new(150)), None);
    }

    #[test]
    fn kinds_map_to_expected_causes() {
        let p = FaultPlan::new()
            .bank_conflict_burst(0, 10, 3)
            .replay_storm(20, 10);
        assert_eq!(
            p.load_fault(Cycle::new(5)),
            Some((3, ReplayCause::BankConflict))
        );
        let (extra, cause) = p.load_fault(Cycle::new(25)).unwrap();
        assert_eq!(cause, ReplayCause::L1Miss);
        assert!(
            extra > 6,
            "storm residue must defeat the largest delay sweep point"
        );
    }

    #[test]
    fn zero_duration_window_is_rejected() {
        let p = FaultPlan::new().latency_spike(100, 0, 20);
        let err = p.validate().unwrap_err();
        assert!(matches!(err, SimError::ConfigInvalid(_)));
        assert!(err.to_string().contains("zero duration"), "{err}");
        assert!(p.windows().is_empty(), "bad window must not be recorded");
    }

    #[test]
    fn overlapping_windows_are_rejected() {
        let p = FaultPlan::new()
            .latency_spike(0, 100, 7)
            .replay_storm(50, 100);
        let err = p.validate().unwrap_err();
        assert!(matches!(err, SimError::ConfigInvalid(_)));
        assert!(err.to_string().contains("overlaps"), "{err}");
        // The first window survives; the overlapping one is dropped.
        assert_eq!(p.windows().len(), 1);
    }

    #[test]
    fn adjacent_windows_are_fine() {
        let p = FaultPlan::new()
            .latency_spike(0, 50, 7)
            .replay_storm(50, 50)
            .bank_conflict_burst(100, 50, 3);
        assert!(p.validate().is_ok());
        assert_eq!(p.windows().len(), 3);
    }

    #[test]
    fn first_error_sticks_across_later_valid_windows() {
        let p = FaultPlan::new()
            .latency_spike(0, 0, 7) // invalid: zero duration
            .replay_storm(50, 100); // valid, but the plan stays poisoned
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("zero duration"), "{err}");
    }

    #[test]
    fn plan_text_encoding_round_trips() {
        let p = FaultPlan::new()
            .latency_spike(200, 50, 8)
            .bank_conflict_burst(400, 30, 3)
            .replay_storm(1000, 120);
        let text = p.to_string();
        assert_eq!(text, "spike@200x50+8,bank@400x30+3,storm@1000x120");
        assert_eq!(text.parse::<FaultPlan>().as_ref(), Ok(&p));
        assert_eq!("".parse::<FaultPlan>(), Ok(FaultPlan::new()));
    }

    #[test]
    fn malformed_plan_text_is_rejected() {
        for bad in [
            "spike@200",
            "spike@200x50",          // missing +param
            "storm@0x10+3",          // storm takes none
            "laser@0x10",            // unknown kind
            "spike@0x0+1",           // zero duration
            "storm@0x10,storm@5x10", // overlap
            "<invalid>",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "`{bad}` must not parse");
        }
        let poisoned = FaultPlan::new().latency_spike(0, 0, 1);
        assert_eq!(poisoned.to_string(), "<invalid>");
    }
}

impl ss_types::Persist for FaultKind {
    fn save(&self, w: &mut ss_types::Writer) {
        match self {
            FaultKind::LatencySpike { extra_cycles } => {
                0u8.save(w);
                extra_cycles.save(w);
            }
            FaultKind::BankConflictBurst { delay_cycles } => {
                1u8.save(w);
                delay_cycles.save(w);
            }
            FaultKind::ReplayStorm => 2u8.save(w),
        }
    }
    fn load(r: &mut ss_types::Reader<'_>) -> Result<Self, ss_types::DecodeError> {
        match u8::load(r)? {
            0 => Ok(FaultKind::LatencySpike {
                extra_cycles: u64::load(r)?,
            }),
            1 => Ok(FaultKind::BankConflictBurst {
                delay_cycles: u64::load(r)?,
            }),
            2 => Ok(FaultKind::ReplayStorm),
            t => Err(r.err(format_args!("invalid FaultKind tag {t}"))),
        }
    }
}

ss_types::impl_persist!(FaultWindow {
    start,
    duration,
    kind
});
ss_types::impl_persist!(FaultPlan { windows, error });
