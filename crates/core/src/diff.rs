//! Online differential checker against the in-order golden model.
//!
//! A [`DiffChecker`] wraps any [`CommitOracle`] (normally an
//! [`InOrderModel`](ss_oracle::InOrderModel) over a fresh copy of the
//! same trace the pipeline consumes) and is attached to a
//! [`Simulator`](crate::Simulator) with
//! [`attach_diff_checker`](crate::Simulator::attach_diff_checker). Every
//! time the pipeline commits a µ-op, the checker pulls the next expected
//! record from the oracle and compares content — seq (commit-order
//! index), pc, µ-op kind, destination register — never timing. The first
//! mismatch aborts the run with [`SimError::Divergence`] carrying the
//! last N commits (the `commit_log_window` ring) and a dump of in-flight
//! scheduler/replay state.
//!
//! The check is O(1) per commit and O(window) in memory, so it can stay
//! on during full-length runs.

use ss_types::commit::{CommitOracle, CommitRecord};

/// Compares the pipeline's commit stream against a golden model, one
/// record at a time.
pub struct DiffChecker {
    oracle: Box<dyn CommitOracle + Send>,
    verified: u64,
}

impl std::fmt::Debug for DiffChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiffChecker")
            .field("verified", &self.verified)
            .finish_non_exhaustive()
    }
}

impl DiffChecker {
    /// Wraps a reference model.
    pub fn new(oracle: Box<dyn CommitOracle + Send>) -> Self {
        DiffChecker {
            oracle,
            verified: 0,
        }
    }

    /// Number of commits verified so far.
    pub fn verified(&self) -> u64 {
        self.verified
    }

    /// Checks one committed record against the oracle. Returns the
    /// *expected* record on mismatch.
    pub fn check(&mut self, actual: &CommitRecord) -> Result<(), CommitRecord> {
        let expected = self.oracle.next_commit();
        if expected == *actual {
            self.verified += 1;
            Ok(())
        } else {
            Err(expected)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_oracle::InOrderModel;
    use ss_workloads::kernels;

    #[test]
    fn identical_streams_verify() {
        let spec = kernels::mix_int(9);
        let mut reference = InOrderModel::from_spec(spec.clone());
        let mut checker = DiffChecker::new(Box::new(InOrderModel::from_spec(spec)));
        for _ in 0..5_000 {
            let rec = reference.next_commit();
            assert!(checker.check(&rec).is_ok());
        }
        assert_eq!(checker.verified(), 5_000);
    }

    #[test]
    fn content_mismatch_is_reported_with_expected_record() {
        let spec = kernels::mix_int(9);
        let mut reference = InOrderModel::from_spec(spec.clone());
        let mut checker = DiffChecker::new(Box::new(InOrderModel::from_spec(spec)));
        let mut rec = reference.next_commit();
        let expected = rec;
        rec.pc = ss_types::Pc::new(rec.pc.get() ^ 0x40); // corrupt the stream
        let got = checker.check(&rec).unwrap_err();
        assert_eq!(got, expected);
        assert_eq!(checker.verified(), 0, "mismatch must not count as verified");
    }

    #[test]
    fn skipped_uop_diverges_on_the_next_commit() {
        let spec = kernels::stream_hi_ilp(4);
        let mut reference = InOrderModel::from_spec(spec.clone());
        let mut checker = DiffChecker::new(Box::new(InOrderModel::from_spec(spec)));
        let _dropped = reference.next_commit();
        let mut next = reference.next_commit();
        next.seq = 0; // the pipeline's commit index would still be 0
        assert!(checker.check(&next).is_err());
    }
}
