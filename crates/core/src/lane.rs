//! The lane engine: one thread steps K independent simulations —
//! *lanes* — through a single driver loop, sharing one decoded µ-op
//! stream.
//!
//! The experiment matrix runs the same workload under many machine
//! configurations. Each cell decodes the identical correct-path µ-op
//! stream (kernel expansion or the RV32IM functional frontend), then
//! simulates timing that differs per configuration. The lane engine
//! exploits that: a [`SharedStream`] decodes each µ-op **once** and
//! serves it to every lane through a bounded ring, and
//! [`run_lane_batch`] steps the lanes in commit-sliced round-robin so
//! their ring cursors stay close (the ring holds only the spread
//! between the slowest and fastest lane, not the whole trace).
//!
//! Each lane is a full [`Simulator`] driven by the gated stepper
//! ([`Simulator::try_run_committed_ff`]), so per-cell statistics are
//! bit-identical to the one-cell reference path — proven by
//! `tests/lane_equivalence.rs` across the policy matrix, kernels, and
//! fault plans. Lanes are failure-isolated: a panicking or erroring
//! lane retires with its own error and its lane-mates continue
//! unperturbed (their simulators share nothing but the read-only µ-op
//! ring).
//!
//! When lanes are **not** used: warm-state forks (the snapshot already
//! skips the shared work), oracle-checked runs (the checker holds its
//! own golden model per cell), traced runs (sinks are per-cell
//! observers with their own buffers), and wall-clock-deadline runs
//! (slicing by commits cannot honor per-cell millisecond budgets
//! fairly). The harness falls back to the per-cell pool for those —
//! see DESIGN.md "Lane engine".

use crate::fault::FaultPlan;
use crate::pipeline::Simulator;
use crate::runner::RunLength;
use ss_isa::MicroOp;
use ss_types::{CancelFlag, SimConfig, SimError, SimStats};
use ss_workloads::TraceSource;
use std::cell::RefCell;
use std::rc::Rc;

/// Upper bound on `--lanes K` accepted by [`validate_lanes`]: beyond
/// this, per-lane cache/ROB state thrashes one core's cache hierarchy
/// and the batch is slower than two smaller ones.
pub const MAX_LANES: usize = 64;

/// Typed validation for the `--lanes K` knob: `K = 0` (no lanes to step)
/// and absurd `K` are rejected with [`SimError::ConfigInvalid`] before
/// any simulator is built.
pub fn validate_lanes(lanes: usize) -> Result<(), SimError> {
    if lanes == 0 {
        return Err(SimError::ConfigInvalid(
            "lanes must be ≥ 1 (0 lanes cannot step any cell)".into(),
        ));
    }
    if lanes > MAX_LANES {
        return Err(SimError::ConfigInvalid(format!(
            "lanes {lanes} exceeds the maximum of {MAX_LANES} per batch"
        )));
    }
    Ok(())
}

/// The default lane count for a batch of `cells` cells: every cell in
/// one batch, capped at [`MAX_LANES`] (and at least 1 so an empty shape
/// still validates).
pub fn default_lanes(cells: usize) -> usize {
    cells.clamp(1, MAX_LANES)
}

/// A decode-once µ-op ring shared by the lanes of one batch.
///
/// The correct-path µ-op stream is a pure function of the workload —
/// machine configuration never influences it — so one underlying
/// [`TraceSource`] can feed every lane. Each lane owns a cursor;
/// µ-ops are decoded on first demand (when the front-running lane's
/// cursor passes the ring's end) and retained until the slowest live
/// cursor passes them ([`SharedStream::trim`]).
#[derive(Debug)]
pub struct SharedStream<T> {
    inner: T,
    name: String,
    buf: std::collections::VecDeque<MicroOp>,
    /// Stream position of `buf[0]`.
    base: u64,
    /// Per-lane stream positions; `u64::MAX` marks a retired lane.
    cursors: Vec<u64>,
}

impl<T: TraceSource> SharedStream<T> {
    /// Wraps `inner` as the shared decode source of a new batch.
    pub fn new(inner: T) -> Self {
        let name = inner.name().to_string();
        SharedStream {
            inner,
            name,
            buf: std::collections::VecDeque::new(),
            base: 0,
            cursors: Vec::new(),
        }
    }

    /// Registers a new lane at stream position 0, returning its id.
    fn register(&mut self) -> usize {
        self.cursors.push(0);
        self.cursors.len() - 1
    }

    /// Produces the µ-op at `lane`'s cursor, decoding it if this lane is
    /// the front-runner, and advances the cursor.
    fn next(&mut self, lane: usize) -> MicroOp {
        let pos = self.cursors[lane];
        debug_assert!(pos >= self.base, "cursor behind trimmed ring");
        while pos >= self.base + self.buf.len() as u64 {
            let uop = self.inner.next_uop();
            self.buf.push_back(uop);
        }
        self.cursors[lane] = pos + 1;
        self.buf[(pos - self.base) as usize]
    }

    /// Marks `lane` finished; its cursor no longer pins the ring.
    fn retire(&mut self, lane: usize) {
        self.cursors[lane] = u64::MAX;
    }

    /// Drops every µ-op all live lanes have consumed. Called by the
    /// batch driver between slices; the ring then holds only the
    /// cursor spread, which commit-sliced stepping keeps bounded.
    fn trim(&mut self) {
        let min = self.cursors.iter().copied().min().unwrap_or(u64::MAX);
        if min == u64::MAX {
            // Every lane retired — nothing will read the ring again.
            self.base += self.buf.len() as u64;
            self.buf.clear();
            return;
        }
        while self.base < min && !self.buf.is_empty() {
            self.buf.pop_front();
            self.base += 1;
        }
    }

    /// Current ring occupancy (µ-ops held), for tests and diagnostics.
    pub fn ring_len(&self) -> usize {
        self.buf.len()
    }
}

/// One lane's view of a [`SharedStream`]: a [`TraceSource`] whose
/// `next_uop` reads through the shared ring at this lane's cursor.
///
/// Holds an `Rc` — lanes of a batch live on one thread (the batch *is*
/// the unit of cross-thread work distribution), so no locking and no
/// `unsafe` are needed.
#[derive(Debug)]
pub struct LaneStream<T> {
    shared: Rc<RefCell<SharedStream<T>>>,
    lane: usize,
    name: String,
}

impl<T: TraceSource> TraceSource for LaneStream<T> {
    fn next_uop(&mut self) -> MicroOp {
        self.shared.borrow_mut().next(self.lane)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// One cell of a lane batch: the machine to simulate and how long to
/// run it. Every cell shares the batch's workload; everything else is
/// per-lane.
#[derive(Debug, Clone)]
pub struct LaneCell {
    /// The machine configuration.
    pub cfg: SimConfig,
    /// Warmup/measure budget (committed µ-ops).
    pub len: RunLength,
    /// Deterministic fault schedule, if any.
    pub faults: FaultPlan,
}

impl LaneCell {
    /// A plain cell: configuration + length, no faults.
    pub fn new(cfg: SimConfig, len: RunLength) -> Self {
        LaneCell {
            cfg,
            len,
            faults: FaultPlan::new(),
        }
    }
}

/// Commits per lane per slice. Small enough to bound the ring spread
/// between the fastest and slowest lane (≤ ~8·frontier µ-ops per lane
/// gap), large enough that slice bookkeeping is noise.
const SLICE: u64 = 8_192;

/// One lane's run plan and progress through it.
struct Lane<T> {
    sim: Simulator<LaneStream<T>>,
    len: RunLength,
    /// Statistics at the warmup boundary (`None` until reached).
    warm: Option<SimStats>,
    /// Actual commit count at measure-phase entry. The reference driver
    /// targets `n` commits *beyond* phase entry, so a warmup phase that
    /// overshoots its boundary (commit width > 1 in the final cycle)
    /// pushes the measure target out by the same overshoot — we must
    /// carry it identically to stay bit-identical.
    phase_start: u64,
}

/// Runs `cells` against one shared workload, `lanes` at a time, on the
/// calling thread. `make_source` builds the underlying trace source
/// once per sub-batch of `lanes` cells (each sub-batch owns its ring).
///
/// Per-cell results are exactly what the per-cell reference path
/// ([`crate::RunRequest::execute_observed`] with a fresh fork) returns:
/// warmup-corrected [`SimStats`] on success, or the run's [`SimError`]
/// — including [`SimError::Cancelled`] with the cell's committed count
/// when `cancel` fires, and [`SimError::Panicked`] when a lane's
/// simulator panics (its lane-mates continue; a panicking lane cannot
/// poison them, since lanes share only the read-only µ-op ring).
///
/// `on_progress(cell_index, done, total)` mirrors the per-cell runner's
/// progress callback, with the batch-relative cell index attached:
/// committed µ-ops over the cell's whole warmup + measure budget,
/// monotone per cell, final call at `done == total`.
pub fn run_lane_batch<T: TraceSource>(
    cells: Vec<LaneCell>,
    lanes: usize,
    mut make_source: impl FnMut() -> T,
    cancel: &CancelFlag,
    mut on_progress: impl FnMut(usize, u64, u64),
) -> Vec<Result<SimStats, SimError>> {
    let lanes = lanes.clamp(1, MAX_LANES);
    let mut results: Vec<Option<Result<SimStats, SimError>>> = (0..cells.len()).map(|_| None).collect();
    let mut batch_start = 0usize;
    for chunk in cells.chunks(lanes) {
        run_one_batch(
            chunk,
            batch_start,
            make_source(),
            cancel,
            &mut results,
            &mut on_progress,
        );
        batch_start += chunk.len();
    }
    results
        .into_iter()
        .map(|r| r.expect("every lane records a result"))
        .collect()
}

/// What one round-robin visit to a lane did.
enum Visit {
    /// The lane ran a slice (or hit a phase boundary) and stays live.
    Stepped,
    /// The lane recorded its result (success or error) and retired.
    Retired(Box<Result<SimStats, SimError>>),
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("opaque panic payload")
        .to_string()
}

fn run_one_batch<T: TraceSource>(
    chunk: &[LaneCell],
    batch_start: usize,
    source: T,
    cancel: &CancelFlag,
    results: &mut [Option<Result<SimStats, SimError>>],
    on_progress: &mut impl FnMut(usize, u64, u64),
) {
    let shared = Rc::new(RefCell::new(SharedStream::new(source)));
    let mut lanes: Vec<Option<Lane<T>>> = Vec::with_capacity(chunk.len());
    for (i, cell) in chunk.iter().enumerate() {
        let (lane_id, name) = {
            let mut s = shared.borrow_mut();
            (s.register(), s.name.clone())
        };
        debug_assert_eq!(lane_id, i);
        let stream = LaneStream {
            shared: Rc::clone(&shared),
            lane: lane_id,
            name,
        };
        // Config validation and fault-plan installation mirror the
        // per-cell runner; a cell that fails setup retires immediately
        // without disturbing its lane-mates.
        let lane = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || -> Result<Lane<T>, SimError> {
                cell.cfg.try_validate()?;
                let mut sim = Simulator::new(cell.cfg.clone(), stream);
                if cell.faults != FaultPlan::new() {
                    sim.set_fault_plan(cell.faults.clone())?;
                }
                Ok(Lane {
                    sim,
                    len: cell.len,
                    warm: None,
                    phase_start: 0,
                })
            },
        ));
        match lane {
            Ok(Ok(l)) => lanes.push(Some(l)),
            Ok(Err(e)) => {
                results[batch_start + i] = Some(Err(e));
                shared.borrow_mut().retire(lane_id);
                lanes.push(None);
            }
            Err(payload) => {
                results[batch_start + i] = Some(Err(SimError::Panicked(panic_message(payload))));
                shared.borrow_mut().retire(lane_id);
                lanes.push(None);
            }
        }
    }

    // Commit-sliced round-robin: each live lane advances at most SLICE
    // commits per visit, clamped to its next phase boundary (warmup end,
    // then measure end), so boundary statistics land on exactly the
    // commit counts the reference path samples at. The slice clamp keeps
    // the lanes' stream cursors close, which keeps the shared ring small.
    let mut live = lanes.iter().filter(|l| l.is_some()).count();
    while live > 0 {
        for (i, slot) in lanes.iter_mut().enumerate() {
            let Some(lane) = slot else { continue };
            let cell_idx = batch_start + i;
            match visit_lane(lane, cell_idx, cancel, on_progress) {
                Visit::Stepped => {}
                Visit::Retired(result) => {
                    let result = *result;
                    results[cell_idx] = Some(result);
                    // Drop the retired simulator now: a panicked lane may
                    // hold inconsistent internal state, but it was never
                    // able to write into the shared ring (lanes only
                    // read), so lane-mates are unaffected.
                    *slot = None;
                    shared.borrow_mut().retire(i);
                    live -= 1;
                }
            }
        }
        shared.borrow_mut().trim();
    }
}

/// One round-robin visit: replicates a single `run_chunked` loop
/// iteration of the reference driver (`RunRequest` fresh-fork path),
/// including its cancel-before-completion check ordering, per-phase
/// progress accounting, and warmup-overshoot carry.
fn visit_lane<T: TraceSource>(
    lane: &mut Lane<T>,
    cell_idx: usize,
    cancel: &CancelFlag,
    on_progress: &mut impl FnMut(usize, u64, u64),
) -> Visit {
    let total = lane.len.warmup + lane.len.measure;
    loop {
        let committed = lane.sim.stats().committed_uops;
        // Phase geometry: (start, budget, progress base).
        let (start, n, base) = if lane.warm.is_none() {
            (0, lane.len.warmup, 0)
        } else {
            (lane.phase_start, lane.len.measure, lane.len.warmup)
        };
        let done = committed.saturating_sub(start).min(n);
        if cancel.is_cancelled() {
            return Visit::Retired(Box::new(Err(SimError::Cancelled {
                committed: base + done,
            })));
        }
        if committed >= start + n {
            if lane.warm.is_none() {
                lane.warm = Some(lane.sim.stats());
                lane.phase_start = committed;
                continue; // enter the measure phase (recheck cancel)
            }
            let end = lane.sim.stats();
            let warm = lane.warm.take().expect("warm recorded at phase entry");
            return Visit::Retired(Box::new(Ok(end.delta(&warm))));
        }
        let step = SLICE.min(start + n - committed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lane.sim.try_run_committed_ff(step)
        }));
        return match outcome {
            Ok(Ok(_)) => {
                let done = (lane.sim.stats().committed_uops - start).min(n);
                on_progress(cell_idx, base + done, total);
                Visit::Stepped
            }
            Ok(Err(e)) => Visit::Retired(Box::new(Err(e))),
            Err(payload) => Visit::Retired(Box::new(Err(SimError::Panicked(panic_message(payload))))),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunRequest;
    use ss_workloads::kernels;

    fn cfg(rob: u32, iq: u32) -> SimConfig {
        SimConfig::builder()
            .issue_to_execute_delay(4)
            .rob_entries(rob)
            .iq_entries(iq)
            .build()
    }

    #[test]
    fn validate_lanes_rejects_degenerate_counts() {
        assert!(matches!(validate_lanes(0), Err(SimError::ConfigInvalid(_))));
        assert!(matches!(
            validate_lanes(MAX_LANES + 1),
            Err(SimError::ConfigInvalid(_))
        ));
        assert!(validate_lanes(1).is_ok());
        assert!(validate_lanes(MAX_LANES).is_ok());
        assert_eq!(default_lanes(0), 1);
        assert_eq!(default_lanes(5), 5);
        assert_eq!(default_lanes(10_000), MAX_LANES);
    }

    #[test]
    fn lane_streams_replay_one_decode() {
        let spec = kernels::benchmark("mix_int").unwrap();
        let shared = Rc::new(RefCell::new(SharedStream::new((spec.build)(1).into_source())));
        let mut a = LaneStream {
            shared: Rc::clone(&shared),
            lane: shared.borrow_mut().register(),
            name: "a".into(),
        };
        let mut b = LaneStream {
            shared: Rc::clone(&shared),
            lane: shared.borrow_mut().register(),
            name: "b".into(),
        };
        // Advance the lanes unevenly; both must see the one decoded
        // sequence, equal to a fresh source µ-op for µ-op.
        let mut fresh = (spec.build)(1).into_source();
        let mut seen_a = Vec::new();
        for _ in 0..600 {
            seen_a.push(a.next_uop());
        }
        for uop in &seen_a {
            assert_eq!(*uop, fresh.next_uop());
        }
        for uop in seen_a.iter().take(250) {
            assert_eq!(*uop, b.next_uop());
        }
        // The laggard lane pins the ring; trimming frees what both passed.
        let held = shared.borrow().ring_len();
        assert_eq!(held, 600);
        shared.borrow_mut().trim();
        assert_eq!(shared.borrow().ring_len(), 350);
        // Retiring the laggard lets the ring drain fully.
        shared.borrow_mut().retire(1);
        shared.borrow_mut().trim();
        assert_eq!(shared.borrow().ring_len(), 0);
    }

    #[test]
    fn ragged_batch_matches_reference_cells() {
        let spec = kernels::benchmark("mix_int").unwrap();
        let len_a = RunLength {
            warmup: 500,
            measure: 3_000,
        };
        let len_b = RunLength {
            warmup: 1_000,
            measure: 9_000,
        };
        let cells = vec![
            LaneCell::new(cfg(192, 60), len_a),
            LaneCell::new(cfg(64, 24), len_b),
            LaneCell::new(cfg(384, 120), len_a),
        ];
        let got = run_lane_batch(
            cells.clone(),
            3,
            || (spec.build)(1).into_source(),
            &CancelFlag::new(),
            |_, _, _| {},
        );
        for (cell, got) in cells.iter().zip(&got) {
            let want = RunRequest::kernel((spec.build)(1))
                .custom_config(cell.cfg.clone())
                .length(cell.len)
                .execute()
                .unwrap()
                .stats;
            assert_eq!(got.as_ref().unwrap(), &want);
        }
    }

    #[test]
    fn cancellation_reports_committed_progress() {
        let spec = kernels::benchmark("mix_int").unwrap();
        let cancel = CancelFlag::new();
        cancel.cancel();
        let got = run_lane_batch(
            vec![LaneCell::new(cfg(192, 60), RunLength::SMOKE)],
            1,
            || (spec.build)(1).into_source(),
            &cancel,
            |_, _, _| {},
        );
        assert!(matches!(
            got[0],
            Err(SimError::Cancelled { committed: 0 })
        ));
    }
}
