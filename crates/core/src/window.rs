//! The instruction window: per-µ-op state carried from dispatch to commit.

use crate::rename::PhysRef;
use ss_bpred::BranchPrediction;
use ss_isa::MicroOp;
use ss_types::{Cycle, SeqNum};

/// Scheduling state of a window entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopState {
    /// Dispatched; waiting in the IQ or the recovery buffer to (re-)issue.
    Waiting,
    /// Issued; traversing the issue-to-execute pipe.
    InFlight,
    /// Executed successfully; waiting to commit (`done_at` valid).
    Done,
}

/// One µ-op in the reorder buffer.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Dynamic sequence number (unique, program order).
    pub seq: SeqNum,
    /// The trace record.
    pub uop: MicroOp,
    /// Fetched past an unresolved mispredicted branch.
    pub wrong_path: bool,
    /// Scheduling state.
    pub state: UopState,
    /// Destination rename: `(new, previous)` mapping.
    pub dst: Option<(PhysRef, PhysRef)>,
    /// Renamed sources.
    pub srcs: [Option<PhysRef>; 2],
    /// Cycle of the most recent issue.
    pub issue_cycle: Cycle,
    /// Times issued (first issue counts toward `Unique`).
    pub times_issued: u32,
    /// Completion cycle (valid once `state == Done`).
    pub done_at: Cycle,
    /// Currently occupies an IQ entry.
    pub holds_iq: bool,
    /// Sits in the recovery buffer awaiting replay.
    pub in_recovery: bool,
    /// Branch prediction made at fetch (correct-path branches).
    pub pred: Option<BranchPrediction>,
    /// Fetch-time knowledge: this branch was mispredicted.
    pub mispredicted: bool,
    /// Direction (vs target) was the wrong part.
    pub dir_wrong: bool,
    /// The misprediction has been resolved (flush already performed).
    pub mispred_handled: bool,
    /// Load outcome recorded at execute: hit the L1D (or forwarded).
    pub load_l1_hit: bool,
    /// Store-set predicted producer this µ-op must wait for.
    pub store_dep: Option<SeqNum>,
    /// For stores: address generated / data written (exec done).
    pub store_executed: bool,
    /// Was the oldest ready µ-op in the IQ when it issued (QOLD
    /// criticality criterion).
    pub was_iq_oldest: bool,
    /// Extra execution delay from a PRF read-port conflict in this µ-op's
    /// issue group (0 or 1; only with the banked-PRF model).
    pub prf_delay: u8,
}

impl RobEntry {
    /// Whether this entry is a candidate for the IQ phase of the issue
    /// stage: waiting, still holding an issue-queue slot, and not parked
    /// in the recovery buffer (which has its own selection loop). This is
    /// the membership predicate of the scheduler's ready queue.
    #[inline]
    pub fn is_iq_waiting(&self) -> bool {
        self.state == UopState::Waiting && !self.in_recovery && self.holds_iq
    }

    /// Creates a freshly-dispatched entry.
    pub fn new(seq: SeqNum, uop: MicroOp, wrong_path: bool) -> Self {
        RobEntry {
            seq,
            uop,
            wrong_path,
            state: UopState::Waiting,
            dst: None,
            srcs: [None, None],
            issue_cycle: Cycle::ZERO,
            times_issued: 0,
            done_at: Cycle::NEVER,
            holds_iq: false,
            in_recovery: false,
            pred: None,
            mispredicted: false,
            dir_wrong: false,
            mispred_handled: false,
            load_l1_hit: false,
            store_dep: None,
            store_executed: false,
            was_iq_oldest: false,
            prf_delay: 0,
        }
    }
}

/// A µ-op sitting in the frontend pipe between fetch and dispatch.
#[derive(Debug, Clone)]
pub struct FetchedUop {
    /// The trace record.
    pub uop: MicroOp,
    /// Fetched on the wrong path.
    pub wrong_path: bool,
    /// Cycle at which it reaches the dispatch stage.
    pub ready_at: Cycle,
    /// Fetch-time branch prediction.
    pub pred: Option<BranchPrediction>,
    /// Fetch-time knowledge of a misprediction.
    pub mispredicted: bool,
    /// Direction (vs target) was the wrong part.
    pub dir_wrong: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_isa::RegRef;
    use ss_types::{ArchReg, Pc};

    #[test]
    fn fresh_entry_defaults() {
        let r = RegRef::int(ArchReg::new(1));
        let uop = MicroOp::alu(Pc::new(0x100), r, r, None);
        let e = RobEntry::new(SeqNum::new(7), uop, false);
        assert_eq!(e.state, UopState::Waiting);
        assert_eq!(e.times_issued, 0);
        assert!(!e.holds_iq);
        assert_eq!(e.done_at, Cycle::NEVER);
    }

    #[test]
    fn iq_waiting_requires_all_three_flags() {
        let r = RegRef::int(ArchReg::new(1));
        let uop = MicroOp::alu(Pc::new(0x100), r, r, None);
        let mut e = RobEntry::new(SeqNum::new(1), uop, false);
        assert!(!e.is_iq_waiting(), "dispatch sets holds_iq, not the ctor");
        e.holds_iq = true;
        assert!(e.is_iq_waiting());
        e.in_recovery = true;
        assert!(!e.is_iq_waiting(), "recovery entries have their own loop");
        e.in_recovery = false;
        e.state = UopState::InFlight;
        assert!(!e.is_iq_waiting());
    }
}

impl ss_types::Persist for UopState {
    fn save(&self, w: &mut ss_types::Writer) {
        ss_types::Persist::save(
            &match self {
                UopState::Waiting => 0,
                UopState::InFlight => 1,
                UopState::Done => 2u8,
            },
            w,
        );
    }
    fn load(r: &mut ss_types::Reader<'_>) -> Result<Self, ss_types::DecodeError> {
        match u8::load(r)? {
            0 => Ok(UopState::Waiting),
            1 => Ok(UopState::InFlight),
            2 => Ok(UopState::Done),
            t => Err(r.err(format_args!("invalid UopState tag {t}"))),
        }
    }
}

ss_types::impl_persist!(RobEntry {
    seq,
    uop,
    wrong_path,
    state,
    dst,
    srcs,
    issue_cycle,
    times_issued,
    done_at,
    holds_iq,
    in_recovery,
    pred,
    mispredicted,
    dir_wrong,
    mispred_handled,
    load_l1_hit,
    store_dep,
    store_executed,
    was_iq_oldest,
    prf_delay
});

ss_types::impl_persist!(FetchedUop {
    uop,
    wrong_path,
    ready_at,
    pred,
    mispredicted,
    dir_wrong
});
