//! Register renaming: per-class rename maps, free lists, and the
//! physical-register scoreboard carrying wakeup and availability times.
//!
//! Two timestamps exist per physical register:
//!
//! * `wake_at` — the earliest cycle a dependent may be **selected** by the
//!   scheduler. Set speculatively when the producer issues; reset to
//!   "never" when the producer is squashed.
//! * `avail_at` — ground truth: a consumer whose execution starts at or
//!   after this cycle reads a valid operand over the bypass network.
//!   Execute-stage verification compares against this; a consumer that
//!   arrives early is a *schedule misspeculation* and triggers a replay.
//!
//! The scoreboard doubles as the event-driven scheduler's *reverse
//! dependency index*: a waiting consumer parks itself on the watch list
//! of every source register whose `wake_at` lies in the future, and any
//! mutation of a register's wake time broadcasts the parked `(seq,
//! epoch)` records into the [`RenameUnit`]'s woken buffer — the software
//! analogue of the tag-broadcast wakeup the paper's scheduler performs
//! in hardware (§3). The pipeline drains the buffer at the top of its
//! issue stage and re-evaluates each woken µ-op; records whose epoch is
//! stale (the µ-op re-registered or was flushed since parking) are
//! discarded there.

use ss_types::{ArchReg, Cycle, PhysReg, RegClass, ReplayCause, SeqNum};

/// A physical register qualified with its file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysRef {
    /// Which register file.
    pub class: RegClass,
    /// Register index within the file.
    pub reg: PhysReg,
}

#[derive(Debug, Clone, Copy)]
struct RegInfo {
    wake_at: Cycle,
    avail_at: Cycle,
    /// Why this register's value arrived later than speculated (drives
    /// replay-cause attribution for consumers).
    late_cause: Option<ReplayCause>,
}

/// Rename state for one register class.
#[derive(Debug, Clone)]
struct ClassState {
    map: [PhysReg; ArchReg::COUNT],
    free: Vec<PhysReg>,
    info: Vec<RegInfo>,
    /// Per-register consumer watch lists: waiting µ-ops parked until this
    /// register's wake time changes (event-driven scheduler only; empty
    /// under the legacy scan).
    watchers: Vec<Vec<(SeqNum, u32)>>,
}

/// The rename unit plus physical-register scoreboard for both files.
#[derive(Debug, Clone)]
pub struct RenameUnit {
    classes: [ClassState; 2],
    /// Consumers released by a wake-time change since the last drain.
    woken: Vec<(SeqNum, u32)>,
}

impl RenameUnit {
    /// Creates the unit with `int_prf`/`fp_prf` physical registers. The
    /// first 32 of each file back the initial architectural state and are
    /// born ready.
    pub fn new(int_prf: u32, fp_prf: u32) -> Self {
        let mk = |n: u32| {
            let ready = RegInfo {
                wake_at: Cycle::ZERO,
                avail_at: Cycle::ZERO,
                late_cause: None,
            };
            ClassState {
                map: std::array::from_fn(|i| PhysReg::new(i as u16)),
                free: (ArchReg::COUNT as u16..n as u16)
                    .rev()
                    .map(PhysReg::new)
                    .collect(),
                info: vec![ready; n as usize],
                watchers: vec![Vec::new(); n as usize],
            }
        };
        RenameUnit {
            classes: [mk(int_prf), mk(fp_prf)],
            woken: Vec::new(),
        }
    }

    fn class(&self, c: RegClass) -> &ClassState {
        &self.classes[c.index()]
    }

    fn class_mut(&mut self, c: RegClass) -> &mut ClassState {
        &mut self.classes[c.index()]
    }

    /// Current mapping of an architectural source.
    pub fn lookup(&self, class: RegClass, reg: ArchReg) -> PhysRef {
        PhysRef {
            class,
            reg: self.class(class).map[reg.index()],
        }
    }

    /// Renames a destination: allocates a fresh physical register (born
    /// not-ready) and returns `(new, previous)` — the previous mapping is
    /// freed when the µ-op commits, or restored if it squashes.
    pub fn rename_dst(&mut self, class: RegClass, reg: ArchReg) -> Option<(PhysRef, PhysRef)> {
        let st = self.class_mut(class);
        let new = st.free.pop()?;
        let prev = st.map[reg.index()];
        st.map[reg.index()] = new;
        st.info[new.index()] = RegInfo {
            wake_at: Cycle::NEVER,
            avail_at: Cycle::NEVER,
            late_cause: None,
        };
        // Any watch records left on the recycled register belong to
        // consumers that re-registered or were flushed long ago (their
        // epochs are stale); a fresh register starts with a clean list.
        st.watchers[new.index()].clear();
        Some((PhysRef { class, reg: new }, PhysRef { class, reg: prev }))
    }

    /// Free physical registers remaining in a class.
    pub fn free_count(&self, class: RegClass) -> usize {
        self.class(class).free.len()
    }

    /// Returns `prev` to the free list (commit of the overwriting µ-op).
    pub fn release(&mut self, prev: PhysRef) {
        self.class_mut(prev.class).free.push(prev.reg);
    }

    /// Undoes a rename during a squash walk (youngest-first): restores the
    /// previous mapping and frees the squashed µ-op's register.
    pub fn unwind(&mut self, arch: ArchReg, new: PhysRef, prev: PhysRef) {
        let st = self.class_mut(new.class);
        debug_assert_eq!(
            st.map[arch.index()],
            new.reg,
            "unwind must be youngest-first"
        );
        st.map[arch.index()] = prev.reg;
        st.free.push(new.reg);
    }

    /// Earliest cycle a consumer of `r` may be selected.
    pub fn wake_at(&self, r: PhysRef) -> Cycle {
        self.class(r.class).info[r.reg.index()].wake_at
    }

    /// Ground-truth operand availability of `r`.
    pub fn avail_at(&self, r: PhysRef) -> Cycle {
        self.class(r.class).info[r.reg.index()].avail_at
    }

    /// Why `r` arrived later than speculated, if it did.
    pub fn late_cause(&self, r: PhysRef) -> Option<ReplayCause> {
        self.class(r.class).info[r.reg.index()].late_cause
    }

    /// Sets the speculative wakeup time (producer issue), broadcasting
    /// the change to any consumers parked on `r`'s watch list.
    pub fn set_wake(&mut self, r: PhysRef, wake_at: Cycle) {
        let st = &mut self.classes[r.class.index()];
        st.info[r.reg.index()].wake_at = wake_at;
        let w = &mut st.watchers[r.reg.index()];
        if !w.is_empty() {
            self.woken.append(w);
        }
    }

    /// Sets the ground-truth availability (producer execute), optionally
    /// recording why it is later than the speculative schedule assumed.
    pub fn set_avail(&mut self, r: PhysRef, avail_at: Cycle, late_cause: Option<ReplayCause>) {
        let info = &mut self.class_mut(r.class).info[r.reg.index()];
        info.avail_at = avail_at;
        info.late_cause = late_cause;
    }

    /// Clears all timing state of `r` back to not-ready (producer
    /// squashed; it will re-issue later). Watchers are broadcast like any
    /// other wake-time change: a parked consumer must re-evaluate, since
    /// the squashed producer's re-issue may pick an *earlier* wake time
    /// than the one the consumer was parked under.
    pub fn reset_timing(&mut self, r: PhysRef) {
        let st = &mut self.classes[r.class.index()];
        st.info[r.reg.index()] = RegInfo {
            wake_at: Cycle::NEVER,
            avail_at: Cycle::NEVER,
            late_cause: None,
        };
        let w = &mut st.watchers[r.reg.index()];
        if !w.is_empty() {
            self.woken.append(w);
        }
    }

    /// Parks waiting µ-op `seq` (registration `epoch`) on `r`'s watch
    /// list; it is broadcast into the woken buffer on the next wake-time
    /// change of `r`.
    pub fn watch(&mut self, r: PhysRef, seq: SeqNum, epoch: u32) {
        self.classes[r.class.index()].watchers[r.reg.index()].push((seq, epoch));
    }

    /// Moves every `(seq, epoch)` record broadcast since the last drain
    /// into `out` (the internal buffer is left empty).
    pub fn drain_woken(&mut self, out: &mut Vec<(SeqNum, u32)>) {
        out.append(&mut self.woken);
    }

    /// Whether any watcher broadcast is pending.
    pub fn has_woken(&self) -> bool {
        !self.woken.is_empty()
    }

    /// Verifies physical-register conservation: for each file, the free
    /// list, the rename map, and the previous mappings held by in-flight
    /// µ-ops (`held_*`, the `prev` of every renamed ROB entry) must
    /// exactly partition the register file. A register appearing twice is
    /// a double-free; one appearing nowhere has leaked.
    pub fn audit(&self, held_int: &[PhysReg], held_fp: &[PhysReg]) -> Result<(), String> {
        for (name, st, held) in [
            ("int", &self.classes[RegClass::Int.index()], held_int),
            ("fp", &self.classes[RegClass::Float.index()], held_fp),
        ] {
            let mut count = vec![0u32; st.info.len()];
            for &r in st.free.iter().chain(st.map.iter()).chain(held.iter()) {
                count[r.index()] += 1;
            }
            if let Some(reg) = count.iter().position(|&c| c == 0) {
                return Err(format!(
                    "{name} p{reg} leaked: in neither free list, map, nor any ROB entry"
                ));
            }
            if let Some(reg) = count.iter().position(|&c| c > 1) {
                return Err(format!(
                    "{name} p{reg} appears {} times across free list, map, and ROB holds",
                    count[reg]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> RenameUnit {
        RenameUnit::new(256, 256)
    }

    #[test]
    fn initial_state_maps_identity_and_ready() {
        let u = unit();
        let r = u.lookup(RegClass::Int, ArchReg::new(5));
        assert_eq!(r.reg, PhysReg::new(5));
        assert_eq!(u.avail_at(r), Cycle::ZERO);
        assert_eq!(u.wake_at(r), Cycle::ZERO);
        assert_eq!(u.free_count(RegClass::Int), 256 - 32);
    }

    #[test]
    fn rename_allocates_fresh_not_ready() {
        let mut u = unit();
        let (new, prev) = u.rename_dst(RegClass::Int, ArchReg::new(3)).unwrap();
        assert_eq!(prev.reg, PhysReg::new(3));
        assert_ne!(new.reg, prev.reg);
        assert_eq!(u.avail_at(new), Cycle::NEVER);
        assert_eq!(u.lookup(RegClass::Int, ArchReg::new(3)), new);
    }

    #[test]
    fn chained_renames_and_release() {
        let mut u = unit();
        let (n1, _p1) = u.rename_dst(RegClass::Int, ArchReg::new(0)).unwrap();
        let (n2, p2) = u.rename_dst(RegClass::Int, ArchReg::new(0)).unwrap();
        assert_eq!(p2, n1, "second rename's previous is the first's new");
        let before = u.free_count(RegClass::Int);
        u.release(p2); // first µ-op's mapping freed at second's commit
        assert_eq!(u.free_count(RegClass::Int), before + 1);
        assert_eq!(u.lookup(RegClass::Int, ArchReg::new(0)), n2);
    }

    #[test]
    fn unwind_restores_previous_mapping() {
        let mut u = unit();
        let (n1, p1) = u.rename_dst(RegClass::Int, ArchReg::new(7)).unwrap();
        let (n2, p2) = u.rename_dst(RegClass::Int, ArchReg::new(7)).unwrap();
        // squash youngest-first
        u.unwind(ArchReg::new(7), n2, p2);
        assert_eq!(u.lookup(RegClass::Int, ArchReg::new(7)), n1);
        u.unwind(ArchReg::new(7), n1, p1);
        assert_eq!(
            u.lookup(RegClass::Int, ArchReg::new(7)).reg,
            PhysReg::new(7)
        );
    }

    #[test]
    fn free_list_exhaustion_returns_none() {
        let mut u = RenameUnit::new(34, 34);
        assert!(u.rename_dst(RegClass::Int, ArchReg::new(0)).is_some());
        assert!(u.rename_dst(RegClass::Int, ArchReg::new(1)).is_some());
        assert!(u.rename_dst(RegClass::Int, ArchReg::new(2)).is_none());
        // FP file independent
        assert!(u.rename_dst(RegClass::Float, ArchReg::new(0)).is_some());
    }

    #[test]
    fn audit_tracks_conservation() {
        let mut u = unit();
        assert!(u.audit(&[], &[]).is_ok(), "fresh unit conserves registers");
        let (_, p1) = u.rename_dst(RegClass::Int, ArchReg::new(0)).unwrap();
        let (_, p2) = u.rename_dst(RegClass::Int, ArchReg::new(1)).unwrap();
        // prevs held by in-flight µ-ops: conserved only when reported
        assert!(u.audit(&[p1.reg, p2.reg], &[]).is_ok());
        let err = u.audit(&[p1.reg], &[]).unwrap_err();
        assert!(
            err.contains("leaked"),
            "missing hold must read as a leak: {err}"
        );
        // double-free: release a register that is also still held
        u.release(p1);
        let err = u.audit(&[p1.reg, p2.reg], &[]).unwrap_err();
        assert!(
            err.contains("times"),
            "double count must be reported: {err}"
        );
        assert!(u.audit(&[p2.reg], &[]).is_ok());
    }

    #[test]
    fn watchers_broadcast_on_wake_changes() {
        let mut u = unit();
        let (r, _) = u.rename_dst(RegClass::Int, ArchReg::new(2)).unwrap();
        u.watch(r, SeqNum::new(11), 3);
        u.watch(r, SeqNum::new(12), 5);
        assert!(!u.has_woken());
        u.set_wake(r, Cycle::new(20));
        assert!(u.has_woken());
        let mut out = Vec::new();
        u.drain_woken(&mut out);
        assert_eq!(out, vec![(SeqNum::new(11), 3), (SeqNum::new(12), 5)]);
        assert!(!u.has_woken(), "drain empties the buffer");
        // The list was consumed: a second change broadcasts nothing.
        u.set_wake(r, Cycle::new(25));
        assert!(!u.has_woken());
        // reset_timing broadcasts too (squash-then-earlier-reissue path).
        u.watch(r, SeqNum::new(13), 1);
        u.reset_timing(r);
        out.clear();
        u.drain_woken(&mut out);
        assert_eq!(out, vec![(SeqNum::new(13), 1)]);
    }

    #[test]
    fn recycled_register_starts_with_clean_watch_list() {
        let mut u = unit();
        let (r, _) = u.rename_dst(RegClass::Int, ArchReg::new(4)).unwrap();
        u.watch(r, SeqNum::new(1), 1);
        // Free it (as the overwriting µ-op's commit would), then drive
        // allocations until the same register comes back around.
        u.release(r);
        let mut back = None;
        for _ in 0..256 {
            let (n, _) = u.rename_dst(RegClass::Int, ArchReg::new(5)).unwrap();
            u.release(n);
            if n == r {
                back = Some(n);
                break;
            }
        }
        let r2 = back.expect("register must recycle");
        u.set_wake(r2, Cycle::new(9));
        assert!(!u.has_woken(), "stale watcher must not survive recycling");
    }

    #[test]
    fn timing_set_and_reset() {
        let mut u = unit();
        let (r, _) = u.rename_dst(RegClass::Float, ArchReg::new(1)).unwrap();
        u.set_wake(r, Cycle::new(10));
        u.set_avail(r, Cycle::new(19), Some(ReplayCause::BankConflict));
        assert_eq!(u.wake_at(r), Cycle::new(10));
        assert_eq!(u.avail_at(r), Cycle::new(19));
        assert_eq!(u.late_cause(r), Some(ReplayCause::BankConflict));
        u.reset_timing(r);
        assert_eq!(u.avail_at(r), Cycle::NEVER);
        assert_eq!(u.late_cause(r), None);
    }
}

ss_types::impl_persist!(PhysRef { class, reg });
ss_types::impl_persist!(RegInfo {
    wake_at,
    avail_at,
    late_cause
});
ss_types::impl_persist!(ClassState {
    map,
    free,
    info,
    watchers
});
ss_types::impl_persist_state!(RenameUnit { classes, woken });
