//! Cycle-exact micro-timing tests: tiny hand-built traces whose IPC and
//! latency behaviour can be predicted in closed form, pinning down the
//! pipeline's timing conventions (issue-to-execute delay, back-to-back
//! wakeup, port widths, non-pipelined units, forwarding).

use ss_core::{RunLength, RunRequest, Simulator};
use ss_isa::{MicroOp, RegRef, INST_BYTES};
use ss_types::{Addr, ArchReg, OpClass, Pc, SchedPolicyKind, SimConfig, SimStats};
use ss_workloads::TraceSource;

/// These tests only care about the stats block; a run that cannot even
/// start is a test failure, so unwrap the outcome here.
fn run_trace(cfg: SimConfig, trace: LoopTrace, len: RunLength) -> SimStats {
    RunRequest::trace_source(trace)
        .custom_config(cfg)
        .length(len)
        .execute()
        .unwrap()
        .stats
}

/// Repeats a fixed µ-op sequence forever, rewriting PCs so the stream is
/// a straight-line megablock (no branches unless included explicitly).
struct LoopTrace {
    ops: Vec<MicroOp>,
    i: usize,
}

impl LoopTrace {
    /// Builds a loop of `body` closed by an always-taken backward jump.
    fn new(mut body: Vec<MicroOp>) -> Self {
        let base = Pc::new(0x40_0000);
        for (k, op) in body.iter_mut().enumerate() {
            op.pc = base.step(k as u64 * INST_BYTES);
        }
        let jump_pc = base.step(body.len() as u64 * INST_BYTES);
        body.push(MicroOp::jump(
            jump_pc,
            ss_types::BranchKind::Direct,
            base,
            None,
        ));
        LoopTrace { ops: body, i: 0 }
    }
}

impl TraceSource for LoopTrace {
    fn next_uop(&mut self) -> MicroOp {
        let op = self.ops[self.i];
        self.i = (self.i + 1) % self.ops.len();
        op
    }
    fn name(&self) -> &str {
        "loop-trace"
    }
}

fn r(i: u8) -> RegRef {
    RegRef::int(ArchReg::new(i))
}

fn cfg(delay: u64) -> SimConfig {
    SimConfig::builder()
        .issue_to_execute_delay(delay)
        .sched_policy(SchedPolicyKind::AlwaysHit)
        .banked_l1d(false)
        .wrong_path(false)
        .build()
}

const LEN: RunLength = RunLength {
    warmup: 2_000,
    measure: 20_000,
};

/// A serial ALU chain retires one µ-op per cycle regardless of the
/// issue-to-execute delay (back-to-back wakeup hides it completely).
#[test]
fn dependent_alu_chain_is_back_to_back() {
    for delay in [0u64, 4, 6] {
        let body = vec![
            MicroOp::alu(Pc::new(0), r(1), r(1), None),
            MicroOp::alu(Pc::new(0), r(1), r(1), None),
            MicroOp::alu(Pc::new(0), r(1), r(1), None),
            MicroOp::alu(Pc::new(0), r(1), r(1), None),
            MicroOp::alu(Pc::new(0), r(1), r(1), None),
            MicroOp::alu(Pc::new(0), r(1), r(1), None),
            MicroOp::alu(Pc::new(0), r(1), r(1), None),
        ];
        let s = run_trace(cfg(delay), LoopTrace::new(body), LEN);
        // 7 chained ALUs + 1 free jump per iteration: ~7 cycles/iter.
        let ipc = s.ipc();
        assert!(
            (1.05..=1.25).contains(&ipc),
            "delay {delay}: serial chain IPC should be ~8/7, got {ipc:.3}"
        );
        assert_eq!(s.replayed_total(), 0);
    }
}

/// Independent ALU µ-ops saturate the 4 ALU ports (not the 6-wide issue).
#[test]
fn independent_alus_saturate_alu_ports() {
    let body: Vec<MicroOp> = (1..=8)
        .map(|i| MicroOp::alu(Pc::new(0), r(i), r(20 + i), None))
        .collect();
    let s = run_trace(cfg(4), LoopTrace::new(body), LEN);
    // 8 independent ALUs + jump per iteration; 4 ALU ports + the branch
    // shares them → 9 µ-ops / ceil(9/4) cycles ≈ 3.6-4 IPC.
    let ipc = s.ipc();
    assert!(
        (3.2..=4.2).contains(&ipc),
        "ALU-port-bound IPC, got {ipc:.3}"
    );
}

/// Non-pipelined divides serialize on the single MulDiv unit: one divide
/// per 25 cycles even when independent.
#[test]
fn divides_are_not_pipelined() {
    let body = vec![
        MicroOp::compute(Pc::new(0), OpClass::IntDiv, r(1), r(11), None),
        MicroOp::compute(Pc::new(0), OpClass::IntDiv, r(2), r(12), None),
    ];
    let s = run_trace(cfg(4), LoopTrace::new(body), LEN);
    // 2 divides + 1 jump per iteration, 25 cycles each divide → 3/50.
    let ipc = s.ipc();
    assert!(
        (0.05..=0.075).contains(&ipc),
        "two serialized 25-cycle divides per iteration, got {ipc:.3}"
    );
}

/// Pipelined multiplies on the single MulDiv port: one per cycle.
#[test]
fn multiplies_are_pipelined_but_port_limited() {
    let body: Vec<MicroOp> = (1..=4)
        .map(|i| MicroOp::compute(Pc::new(0), OpClass::IntMul, r(i), r(20 + i), None))
        .collect();
    let s = run_trace(cfg(4), LoopTrace::new(body), LEN);
    // 4 independent muls per iteration through 1 port → 4 cycles; plus
    // the jump rides along → IPC ≈ 5/4.
    let ipc = s.ipc();
    assert!(
        (1.1..=1.35).contains(&ipc),
        "mul-port-bound IPC, got {ipc:.3}"
    );
}

/// An L1-hitting load chain costs exactly load-to-use (4) cycles per link
/// under speculative scheduling, independent of the delay.
#[test]
fn load_chain_costs_load_to_use_per_link() {
    for delay in [0u64, 4] {
        let body = vec![MicroOp::load(Pc::new(0), r(1), r(1), Addr::new(0x1000))];
        let s = run_trace(cfg(delay), LoopTrace::new(body), LEN);
        // 1 load + 1 jump per 4 cycles → IPC 0.5.
        let ipc = s.ipc();
        assert!(
            (0.45..=0.55).contains(&ipc),
            "delay {delay}: chained hitting load = 4 cycles/link, got {ipc:.3}"
        );
        assert_eq!(s.replayed_total(), 0, "hits must not replay");
    }
}

/// Store-to-load forwarding: a load reading a just-stored address is
/// satisfied from the store queue without an L1D access — provided the
/// store is still in the window. An older serial divide blocks commit so
/// the store queue stays populated while the pair executes out of order.
#[test]
fn store_to_load_forwarding_bypasses_the_cache() {
    let a = Addr::new(0x2000);
    let body = vec![
        MicroOp::compute(Pc::new(0), OpClass::IntDiv, r(20), r(20), None),
        MicroOp::alu(Pc::new(0), r(3), r(3), None),
        MicroOp::store(Pc::new(0), r(10), r(3), a),
        MicroOp::load(Pc::new(0), r(4), r(10), a),
        MicroOp::alu(Pc::new(0), r(5), r(4), None),
    ];
    let s = run_trace(cfg(4), LoopTrace::new(body), LEN);
    // The store-set-serialized pair executes while the divide blocks
    // commit, so most loads forward instead of accessing the L1D.
    assert!(
        s.l1d.accesses < s.committed_loads / 2,
        "forwarded loads must not access the L1D: {} accesses for {} loads",
        s.l1d.accesses,
        s.committed_loads
    );
    // Store Sets must have learned the hazard early (few violations
    // relative to the number of pairs).
    assert!(
        s.memdep_violations < s.committed_loads / 20,
        "violations must stay rare: {}",
        s.memdep_violations
    );
}

/// Exercising tick() directly: the watchdog-visible state stays sane and
/// cycles advance monotonically.
#[test]
fn manual_ticks_advance_the_machine() {
    let body = vec![MicroOp::alu(Pc::new(0), r(1), r(2), None)];
    let mut sim = Simulator::new(cfg(4), LoopTrace::new(body));
    for _ in 0..500 {
        sim.tick();
    }
    let s = sim.stats();
    assert_eq!(s.cycles, 500);
    assert!(
        s.committed_uops > 300,
        "machine must be retiring by cycle 500"
    );
}
