//! Global branch history with incrementally-folded views.
//!
//! TAGE indexes each tagged component with a hash of the PC and the most
//! recent `L(i)` history bits. Rather than re-hashing hundreds of bits per
//! prediction, the standard implementation keeps *folded* registers that
//! are updated in O(1) per inserted bit (Seznec's circular-shift-register
//! technique). Speculative fetch-time updates are repaired on a squash by
//! restoring a [`HistoryCheckpoint`]; checkpoints are plain `Copy` data so
//! taking one per in-flight branch costs no allocation.

/// Capacity of the raw history ring in bits. Must comfortably exceed the
/// longest geometric history plus the deepest speculative window so that
/// checkpointed fold-out bits are never overwritten before restore.
const RING_BITS: usize = 4096;

/// Maximum folded registers supported (components × 3 folds each).
pub(crate) const MAX_FOLDS: usize = 48;

/// A folded view of the most recent `length` history bits compressed to
/// `width` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Folded {
    pub value: u32,
    width: u32,
    /// `length % width`, the rotation applied to the outgoing bit.
    out_rot: u32,
}

impl Folded {
    fn new(length: usize, width: usize) -> Self {
        assert!(width > 0 && width <= 32);
        Folded {
            value: 0,
            width: width as u32,
            out_rot: (length % width) as u32,
        }
    }

    /// Inserts `new_bit` and expires `old_bit` (the bit that is now
    /// `length + 1` positions old). Classic Seznec circular fold: shift
    /// left, XOR the expiring bit at its rotated position, fold the
    /// overflow bit back into bit 0.
    fn update(&mut self, new_bit: u8, old_bit: u8) {
        let mut v = (self.value << 1) | new_bit as u32;
        v ^= (old_bit as u32) << self.out_rot;
        v ^= v >> self.width;
        self.value = v & ((1u32 << self.width) - 1);
    }
}

/// Snapshot of the history state taken at prediction time; restoring it
/// rewinds all speculative updates made since. `Copy`, so it can live in
/// per-branch pipeline state without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryCheckpoint {
    pos: u64,
    folded: [Folded; MAX_FOLDS],
    path: u32,
}

/// Global direction history plus folded views for every TAGE component.
#[derive(Debug, Clone)]
pub struct GlobalHistory {
    ring: Vec<u8>,
    pos: u64,
    /// Folded registers, three per component: index fold, tag fold, and a
    /// second tag fold one bit narrower (classic TAGE tag hash).
    folded: [Folded; MAX_FOLDS],
    /// 16-bit path history (low bits of branch PCs).
    path: u32,
    lengths: Vec<usize>,
}

impl GlobalHistory {
    /// Creates history folds for components with the given history
    /// `lengths`, index width `index_bits` and tag width `tag_bits`.
    ///
    /// # Panics
    ///
    /// Panics if more than `MAX_FOLDS / 3` components are requested.
    pub fn new(lengths: &[usize], index_bits: usize, tag_bits: usize) -> Self {
        assert!(lengths.len() * 3 <= MAX_FOLDS, "too many TAGE components");
        let mut folded = [Folded::default(); MAX_FOLDS];
        for (i, &len) in lengths.iter().enumerate() {
            folded[i * 3] = Folded::new(len, index_bits);
            folded[i * 3 + 1] = Folded::new(len, tag_bits);
            folded[i * 3 + 2] = Folded::new(len, tag_bits - 1);
        }
        GlobalHistory {
            ring: vec![0; RING_BITS],
            pos: 0,
            folded,
            path: 0,
            lengths: lengths.to_vec(),
        }
    }

    /// Pushes one (possibly speculative) outcome bit, given a low PC bit
    /// for path history.
    pub fn push(&mut self, taken: bool, pc_low_bit: u8) {
        let new_bit = taken as u8;
        self.ring[(self.pos % RING_BITS as u64) as usize] = new_bit;
        for (c, &len) in self.lengths.iter().enumerate() {
            // The bit that ages out of an L-bit history when one bit
            // enters is the one inserted L positions ago.
            let old = if self.pos >= len as u64 {
                self.ring[((self.pos - len as u64) % RING_BITS as u64) as usize]
            } else {
                0
            };
            self.folded[c * 3].update(new_bit, old);
            self.folded[c * 3 + 1].update(new_bit, old);
            self.folded[c * 3 + 2].update(new_bit, old);
        }
        self.pos += 1;
        self.path = (self.path << 1) | pc_low_bit as u32;
    }

    /// Folded index hash input for component `c`.
    pub(crate) fn index_fold(&self, c: usize) -> u32 {
        self.folded[c * 3].value
    }

    /// Folded tag hash inputs for component `c`.
    pub(crate) fn tag_folds(&self, c: usize) -> (u32, u32) {
        (self.folded[c * 3 + 1].value, self.folded[c * 3 + 2].value)
    }

    /// Low bits of the path history.
    pub(crate) fn path(&self) -> u32 {
        self.path & 0xFFFF
    }

    /// Takes a checkpoint for later [`GlobalHistory::restore`].
    pub fn checkpoint(&self) -> HistoryCheckpoint {
        HistoryCheckpoint {
            pos: self.pos,
            folded: self.folded,
            path: self.path,
        }
    }

    /// Rewinds to a checkpoint (the ring is not rewound: bits newer than
    /// the checkpoint are garbage, but they will be rewritten before any
    /// fold reads them — see `RING_BITS`).
    ///
    /// # Panics
    ///
    /// Panics if the speculative window since the checkpoint exceeded the
    /// ring capacity.
    pub fn restore(&mut self, cp: &HistoryCheckpoint) {
        assert!(
            (self.pos - cp.pos) < (RING_BITS - self.lengths.last().copied().unwrap_or(0)) as u64,
            "speculative window exceeded the history ring"
        );
        self.pos = cp.pos;
        self.folded = cp.folded;
        self.path = cp.path;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lengths() -> Vec<usize> {
        vec![4, 8, 16, 64, 640]
    }

    /// The defining property of a folded history: its value depends only
    /// on the most recent `length` bits, not on anything older.
    #[test]
    fn fold_depends_only_on_history_suffix() {
        let lens = lengths();
        let max_len = *lens.iter().max().unwrap();
        // Two histories with completely different prefixes...
        let mut h1 = GlobalHistory::new(&lens, 10, 12);
        let mut h2 = GlobalHistory::new(&lens, 10, 12);
        let mut x: u64 = 0x1234_5678;
        for i in 0..1500u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h1.push((x >> 60) & 1 == 1, 0);
            h2.push(i % 7 == 0, 0);
        }
        // ...then the same max_len-bit suffix.
        for _ in 0..max_len {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (x >> 59) & 1 == 1;
            h1.push(b, 0);
            h2.push(b, 0);
        }
        for (c, &len) in lens.iter().enumerate() {
            assert_eq!(h1.index_fold(c), h2.index_fold(c), "index fold, L={len}");
            assert_eq!(h1.tag_folds(c), h2.tag_folds(c), "tag folds, L={len}");
        }
    }

    /// Flipping the newest bit must change the fold (no silent loss of the
    /// incoming bit).
    #[test]
    fn fold_sees_the_newest_bit() {
        let lens = lengths();
        let mut h1 = GlobalHistory::new(&lens, 10, 12);
        let mut h2 = GlobalHistory::new(&lens, 10, 12);
        for i in 0..100 {
            h1.push(i % 3 == 0, 0);
            h2.push(i % 3 == 0, 0);
        }
        h1.push(true, 0);
        h2.push(false, 0);
        for c in 0..lens.len() {
            assert_ne!(h1.index_fold(c), h2.index_fold(c), "component {c}");
        }
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut h = GlobalHistory::new(&lengths(), 10, 12);
        for i in 0..100 {
            h.push(i % 3 == 0, (i & 1) as u8);
        }
        let cp = h.checkpoint();
        let snapshot: Vec<u32> = (0..lengths().len()).map(|c| h.index_fold(c)).collect();
        // speculative wrong-path pushes
        for i in 0..50 {
            h.push(i % 2 == 0, 1);
        }
        h.restore(&cp);
        for (c, &v) in snapshot.iter().enumerate() {
            assert_eq!(h.index_fold(c), v);
        }
        // continuing after restore matches a history that never speculated
        let mut h2 = GlobalHistory::new(&lengths(), 10, 12);
        for i in 0..100 {
            h2.push(i % 3 == 0, (i & 1) as u8);
        }
        h.push(true, 0);
        h2.push(true, 0);
        for c in 0..lengths().len() {
            assert_eq!(h.index_fold(c), h2.index_fold(c));
            assert_eq!(h.tag_folds(c), h2.tag_folds(c));
        }
    }

    #[test]
    fn folds_differ_across_lengths() {
        let mut h = GlobalHistory::new(&lengths(), 10, 12);
        for i in 0..1000u32 {
            h.push((i.wrapping_mul(2654435761)) & 4 != 0, (i & 1) as u8);
        }
        let folds: Vec<u32> = (0..lengths().len()).map(|c| h.index_fold(c)).collect();
        let distinct: std::collections::HashSet<_> = folds.iter().collect();
        assert!(distinct.len() >= 3, "folds should not collapse: {folds:?}");
    }

    #[test]
    fn path_history_tracks_pc_bits() {
        let mut h = GlobalHistory::new(&lengths(), 10, 12);
        h.push(true, 1);
        h.push(false, 0);
        h.push(true, 1);
        assert_eq!(h.path() & 0b111, 0b101);
    }

    #[test]
    #[should_panic(expected = "too many")]
    fn too_many_components_rejected() {
        let lens: Vec<usize> = (1..=20).map(|i| i * 4).collect();
        let _ = GlobalHistory::new(&lens, 10, 12);
    }
}

ss_types::impl_persist!(Folded {
    value,
    width,
    out_rot
});
ss_types::impl_persist!(HistoryCheckpoint { pos, folded, path });
ss_types::impl_persist_state!(GlobalHistory {
    ring,
    pos,
    folded,
    path
});
