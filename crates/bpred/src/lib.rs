//! Branch-prediction substrate: TAGE direction prediction, a 2-way BTB,
//! and a return-address stack, behind a single pipeline-facing facade.
//!
//! The pipeline calls [`BranchPredictor::on_branch_fetch`] for every
//! fetched branch (getting a redirect PC plus `Copy` metadata),
//! [`BranchPredictor::on_mispredict`] when Execute discovers a wrong
//! prediction (restores speculative history), and
//! [`BranchPredictor::on_commit`] to train the tables in retirement order.
//!
//! # Example
//!
//! ```
//! use ss_bpred::BranchPredictor;
//! use ss_types::{BranchKind, Pc, PredictorConfig};
//!
//! let mut bp = BranchPredictor::new(&PredictorConfig::default());
//! let pred = bp.on_branch_fetch(Pc::new(0x1000), BranchKind::Conditional, Pc::new(0x1004));
//! // ... pipeline compares pred.next_pc with the actual successor ...
//! bp.on_commit(Pc::new(0x1000), BranchKind::Conditional, true, Pc::new(0x2000), &pred.meta);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bimodal;
pub mod btb;
pub mod history;
pub mod ras;
pub mod tage;

pub use bimodal::{Bimodal, BimodalMeta};
pub use btb::Btb;
pub use history::{GlobalHistory, HistoryCheckpoint};
pub use ras::{Ras, RasCheckpoint};
pub use tage::{geometric_lengths, Tage, TageMeta};

use ss_types::{BranchKind, Pc, PredictorConfig};

/// Direction-predictor metadata, carried from fetch to commit.
#[derive(Debug, Clone, Copy)]
pub enum DirMeta {
    /// TAGE prediction metadata.
    Tage(TageMeta),
    /// Bimodal prediction metadata (AB3 ablation).
    Bimodal(BimodalMeta),
}

/// Everything the pipeline must carry per in-flight branch to repair and
/// train the predictor. Plain `Copy` data — no allocation per branch.
#[derive(Debug, Clone, Copy)]
pub struct PredMeta {
    dir: Option<DirMeta>,
    hist_cp: Option<HistoryCheckpoint>,
    ras_cp: RasCheckpoint,
}

/// The fetch-time prediction for one branch.
#[derive(Debug, Clone, Copy)]
pub struct BranchPrediction {
    /// Predicted direction (always `true` for unconditional kinds).
    pub taken: bool,
    /// The PC fetch should proceed to. Falls back to the fall-through
    /// when the direction is not-taken *or* no target is known (cold
    /// BTB/RAS), which is what a real frontend does.
    pub next_pc: Pc,
    /// Repair/training metadata.
    pub meta: PredMeta,
}

enum Dir {
    Tage(Box<Tage>),
    Bimodal(Bimodal),
}

/// The combined branch predictor (direction + target + returns).
pub struct BranchPredictor {
    dir: Dir,
    btb: Btb,
    ras: Ras,
}

impl std::fmt::Debug for BranchPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BranchPredictor")
            .field(
                "dir",
                &match self.dir {
                    Dir::Tage(_) => "tage",
                    Dir::Bimodal(_) => "bimodal",
                },
            )
            .finish_non_exhaustive()
    }
}

impl BranchPredictor {
    /// Builds the predictor complex from the machine configuration.
    pub fn new(cfg: &PredictorConfig) -> Self {
        let dir = if cfg.bimodal_only {
            Dir::Bimodal(Bimodal::new(cfg.tage_log_base_entries + 2))
        } else {
            Dir::Tage(Box::new(Tage::new(cfg)))
        };
        BranchPredictor {
            dir,
            btb: Btb::new(cfg.btb_entries, cfg.btb_ways),
            ras: Ras::new(cfg.ras_entries),
        }
    }

    /// Predicts a fetched branch and speculatively updates history/RAS.
    /// `fallthrough` is the PC of the next sequential instruction.
    pub fn on_branch_fetch(
        &mut self,
        pc: Pc,
        kind: BranchKind,
        fallthrough: Pc,
    ) -> BranchPrediction {
        let hist_cp = match &self.dir {
            Dir::Tage(t) => Some(t.checkpoint()),
            Dir::Bimodal(_) => None,
        };
        let ras_cp = self.ras.checkpoint();

        let (taken, dir_meta) = match kind {
            BranchKind::Conditional => match &mut self.dir {
                Dir::Tage(t) => {
                    let (p, m) = t.predict(pc);
                    (p, Some(DirMeta::Tage(m)))
                }
                Dir::Bimodal(b) => {
                    let (p, m) = b.predict(pc);
                    (p, Some(DirMeta::Bimodal(m)))
                }
            },
            _ => (true, None),
        };

        // Target selection.
        let target = if taken {
            match kind {
                BranchKind::Return => self.ras.pop().or_else(|| self.btb.lookup(pc)),
                _ => self.btb.lookup(pc),
            }
        } else {
            None
        };
        if matches!(kind, BranchKind::Call) {
            self.ras.push(fallthrough);
        }
        // Speculative history insertion for conditional branches.
        if matches!(kind, BranchKind::Conditional) {
            if let Dir::Tage(t) = &mut self.dir {
                t.push_history(taken, pc);
            }
        }

        let next_pc = if taken {
            target.unwrap_or(fallthrough)
        } else {
            fallthrough
        };
        BranchPrediction {
            taken,
            next_pc,
            meta: PredMeta {
                dir: dir_meta,
                hist_cp,
                ras_cp,
            },
        }
    }

    /// Repairs speculative state after Execute discovers a misprediction
    /// of this branch, then redoes the branch's own correct speculative
    /// action (history push, RAS push/pop). `fallthrough` is the branch's
    /// sequential successor (the return address for calls).
    pub fn on_mispredict(
        &mut self,
        pc: Pc,
        kind: BranchKind,
        actual_taken: bool,
        fallthrough: Pc,
        meta: &PredMeta,
    ) {
        if let (Dir::Tage(t), Some(cp)) = (&mut self.dir, &meta.hist_cp) {
            t.restore(cp);
        }
        self.ras.restore(&meta.ras_cp);
        match kind {
            BranchKind::Call => self.ras.push(fallthrough),
            BranchKind::Return => {
                let _ = self.ras.pop();
            }
            _ => {}
        }
        if matches!(kind, BranchKind::Conditional) {
            if let Dir::Tage(t) = &mut self.dir {
                t.push_history(actual_taken, pc);
            }
        }
    }

    /// Trains the direction tables and the BTB with the resolved outcome,
    /// in retirement order.
    pub fn on_commit(
        &mut self,
        pc: Pc,
        kind: BranchKind,
        actual_taken: bool,
        actual_target: Pc,
        meta: &PredMeta,
    ) {
        if matches!(kind, BranchKind::Conditional) {
            match (&mut self.dir, &meta.dir) {
                (Dir::Tage(t), Some(DirMeta::Tage(m))) => t.update(actual_taken, m),
                (Dir::Bimodal(b), Some(DirMeta::Bimodal(m))) => b.update(actual_taken, m),
                _ => {}
            }
        }
        if actual_taken {
            self.btb.update(pc, actual_target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(&PredictorConfig::default())
    }

    #[test]
    fn conditional_loop_becomes_predictable() {
        let mut p = bp();
        let pc = Pc::new(0x1000);
        let ft = Pc::new(0x1004);
        let tgt = Pc::new(0x0F00);
        let mut wrong = 0;
        for i in 0..2000u64 {
            let taken = i % 8 != 7;
            let pred = p.on_branch_fetch(pc, BranchKind::Conditional, ft);
            let actual_next = if taken { tgt } else { ft };
            if pred.next_pc != actual_next {
                wrong += 1;
                p.on_mispredict(pc, BranchKind::Conditional, taken, ft, &pred.meta);
            }
            p.on_commit(pc, BranchKind::Conditional, taken, tgt, &pred.meta);
        }
        assert!(
            wrong < 100,
            "loop branch + BTB should converge, wrong={wrong}"
        );
    }

    #[test]
    fn btb_cold_miss_then_learned_target() {
        let mut p = bp();
        let pc = Pc::new(0x2000);
        let ft = Pc::new(0x2004);
        let tgt = Pc::new(0x3000);
        let pred = p.on_branch_fetch(pc, BranchKind::Direct, ft);
        assert!(pred.taken);
        assert_eq!(pred.next_pc, ft, "cold BTB: no redirect possible");
        p.on_commit(pc, BranchKind::Direct, true, tgt, &pred.meta);
        let pred2 = p.on_branch_fetch(pc, BranchKind::Direct, ft);
        assert_eq!(pred2.next_pc, tgt, "target learned");
    }

    #[test]
    fn call_return_pairs_predict_via_ras() {
        let mut p = bp();
        let call_pc = Pc::new(0x4000);
        let ret_pc = Pc::new(0x8000);
        let callee = Pc::new(0x8000 - 16);
        // teach the BTB the call target
        let pred = p.on_branch_fetch(call_pc, BranchKind::Call, call_pc.step(4));
        p.on_commit(call_pc, BranchKind::Call, true, callee, &pred.meta);
        // second call: target known, RAS holds the return address
        let pred = p.on_branch_fetch(call_pc, BranchKind::Call, call_pc.step(4));
        assert_eq!(pred.next_pc, callee);
        let rpred = p.on_branch_fetch(ret_pc, BranchKind::Return, ret_pc.step(4));
        assert_eq!(rpred.next_pc, call_pc.step(4), "return predicted from RAS");
    }

    #[test]
    fn mispredict_repair_restores_ras() {
        let mut p = bp();
        let call_pc = Pc::new(0x4000);
        // push a return address speculatively
        let pred = p.on_branch_fetch(call_pc, BranchKind::Call, call_pc.step(4));
        // wrong path consumed the RAS entry
        let _ = p.on_branch_fetch(Pc::new(0x9000), BranchKind::Return, Pc::new(0x9004));
        // the call itself was mispredicted (target): repair
        p.on_mispredict(call_pc, BranchKind::Call, true, call_pc.step(4), &pred.meta);
        // RAS must again contain the call's return address
        let rpred = p.on_branch_fetch(Pc::new(0xA000), BranchKind::Return, Pc::new(0xA004));
        assert_eq!(rpred.next_pc, call_pc.step(4));
    }

    #[test]
    fn bimodal_ablation_runs() {
        let cfg = PredictorConfig {
            bimodal_only: true,
            ..Default::default()
        };
        let mut p = BranchPredictor::new(&cfg);
        let pc = Pc::new(0x1000);
        let ft = Pc::new(0x1004);
        let mut wrong = 0;
        for i in 0..1000u64 {
            let taken = i % 2 == 0; // alternating: bimodal cannot learn
            let pred = p.on_branch_fetch(pc, BranchKind::Conditional, ft);
            if pred.taken != taken {
                wrong += 1;
                p.on_mispredict(pc, BranchKind::Conditional, taken, ft, &pred.meta);
            }
            p.on_commit(
                pc,
                BranchKind::Conditional,
                taken,
                Pc::new(0x0F00),
                &pred.meta,
            );
        }
        assert!(
            wrong > 300,
            "bimodal must not learn alternation, wrong={wrong}"
        );
    }

    #[test]
    fn tage_beats_bimodal_on_history_patterns() {
        let run = |bimodal: bool| -> u64 {
            let cfg = PredictorConfig {
                bimodal_only: bimodal,
                ..Default::default()
            };
            let mut p = BranchPredictor::new(&cfg);
            let pc = Pc::new(0x1000);
            let ft = Pc::new(0x1004);
            let tgt = Pc::new(0x0F00);
            let mut wrong = 0;
            for i in 0..4000u64 {
                let taken = (i % 3 == 0) ^ (i % 5 == 0);
                let pred = p.on_branch_fetch(pc, BranchKind::Conditional, ft);
                if pred.taken != taken {
                    wrong += 1;
                    p.on_mispredict(pc, BranchKind::Conditional, taken, ft, &pred.meta);
                }
                p.on_commit(pc, BranchKind::Conditional, taken, tgt, &pred.meta);
            }
            wrong
        };
        let tage_wrong = run(false);
        let bimodal_wrong = run(true);
        assert!(
            tage_wrong * 2 < bimodal_wrong,
            "TAGE ({tage_wrong}) should beat bimodal ({bimodal_wrong}) by 2x on a period-15 pattern"
        );
    }
}

use ss_types::persist::{DecodeError, Persist, PersistState, Reader, Writer};

impl Persist for DirMeta {
    fn save(&self, w: &mut Writer) {
        match self {
            DirMeta::Tage(m) => {
                0u8.save(w);
                m.save(w);
            }
            DirMeta::Bimodal(m) => {
                1u8.save(w);
                m.save(w);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::load(r)? {
            0 => DirMeta::Tage(TageMeta::load(r)?),
            1 => DirMeta::Bimodal(BimodalMeta::load(r)?),
            t => return Err(r.err(format_args!("invalid DirMeta tag {t}"))),
        })
    }
}

ss_types::impl_persist!(PredMeta {
    dir,
    hist_cp,
    ras_cp
});
ss_types::impl_persist!(BranchPrediction {
    taken,
    next_pc,
    meta
});

impl PersistState for BranchPredictor {
    fn save_state(&self, w: &mut Writer) {
        match &self.dir {
            Dir::Tage(t) => {
                0u8.save(w);
                t.save_state(w);
            }
            Dir::Bimodal(b) => {
                1u8.save(w);
                b.save_state(w);
            }
        }
        self.btb.save_state(w);
        self.ras.save_state(w);
    }
    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), DecodeError> {
        let tag = u8::load(r)?;
        match (&mut self.dir, tag) {
            (Dir::Tage(t), 0) => t.restore_state(r)?,
            (Dir::Bimodal(b), 1) => b.restore_state(r)?,
            (_, t @ (0 | 1)) => {
                return Err(r.err(format_args!(
                    "direction-predictor kind mismatch (snapshot tag {t})"
                )))
            }
            (_, t) => return Err(r.err(format_args!("invalid direction-predictor tag {t}"))),
        }
        self.btb.restore_state(r)?;
        self.ras.restore_state(r)
    }
}
