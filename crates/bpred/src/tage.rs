//! The TAGE conditional-branch direction predictor (Seznec & Michaud,
//! JILP 2006) — the paper's Table 1 predictor: a bimodal base plus 12
//! partially-tagged components indexed with geometrically-increasing
//! history lengths (4 … 640), ~15K entries total.

use crate::history::{GlobalHistory, HistoryCheckpoint};
use ss_types::{Pc, PredictorConfig};

/// Maximum tagged components supported (matches `history::MAX_FOLDS / 3`).
const MAX_COMPONENTS: usize = 16;

/// One tagged-component entry.
#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    tag: u16,
    /// Signed 3-bit prediction counter, −4..=3; ≥ 0 predicts taken.
    ctr: i8,
    /// 2-bit usefulness counter.
    u: u8,
}

/// Prediction metadata carried by the pipeline from fetch to retire so the
/// update uses the indices/tags computed with fetch-time history.
#[derive(Debug, Clone, Copy)]
pub struct TageMeta {
    indices: [u32; MAX_COMPONENTS],
    tags: [u16; MAX_COMPONENTS],
    base_index: u32,
    /// Providing tagged component, if any.
    provider: Option<u8>,
    /// Next-longest matching component (alt provider), if any.
    alt: Option<u8>,
    provider_pred: bool,
    alt_pred: bool,
    /// The final prediction returned.
    pred: bool,
    /// Whether the provider entry looked newly allocated (weak and
    /// useless).
    provider_new: bool,
}

/// The TAGE predictor with its embedded global history.
#[derive(Debug, Clone)]
pub struct Tage {
    base: Vec<u8>,
    tables: Vec<Vec<TageEntry>>,
    hist: GlobalHistory,
    lengths: Vec<usize>,
    index_bits: u32,
    tag_bits: u32,
    use_alt_on_na: i8,
    tick: u64,
    lfsr: u32,
}

/// Computes the geometric history-length series `L(i)`.
pub fn geometric_lengths(n: u32, min: u32, max: u32) -> Vec<usize> {
    assert!(n >= 2 && min >= 1 && max > min);
    let ratio = (max as f64 / min as f64).powf(1.0 / (n as f64 - 1.0));
    let mut out = Vec::with_capacity(n as usize);
    let mut prev = 0usize;
    for i in 0..n {
        let mut l = (min as f64 * ratio.powi(i as i32)).round() as usize;
        if l <= prev {
            l = prev + 1; // keep strictly increasing
        }
        out.push(l);
        prev = l;
    }
    out
}

impl Tage {
    /// Builds TAGE from the machine's [`PredictorConfig`].
    pub fn new(cfg: &PredictorConfig) -> Self {
        let lengths = geometric_lengths(
            cfg.tage_tagged_components,
            cfg.tage_min_history,
            cfg.tage_max_history,
        );
        assert!(lengths.len() <= MAX_COMPONENTS);
        let hist = GlobalHistory::new(
            &lengths,
            cfg.tage_log_tagged_entries as usize,
            cfg.tage_tag_bits as usize,
        );
        Tage {
            base: vec![2; 1 << cfg.tage_log_base_entries], // weakly taken
            tables: vec![
                vec![TageEntry::default(); 1 << cfg.tage_log_tagged_entries];
                lengths.len()
            ],
            hist,
            lengths,
            index_bits: cfg.tage_log_tagged_entries,
            tag_bits: cfg.tage_tag_bits,
            use_alt_on_na: 0,
            tick: 0,
            lfsr: 0xACE1,
        }
    }

    /// History lengths in use (exposed for tests/diagnostics).
    pub fn history_lengths(&self) -> &[usize] {
        &self.lengths
    }

    fn index(&self, pc: Pc, c: usize) -> u32 {
        let mask = (1u32 << self.index_bits) - 1;
        let pc_bits = (pc.get() >> 2) as u32;
        let path = if self.lengths[c] >= 16 {
            self.hist.path()
        } else {
            0
        };
        (pc_bits ^ (pc_bits >> self.index_bits) ^ self.hist.index_fold(c) ^ (path >> (c & 3)))
            & mask
    }

    fn tag(&self, pc: Pc, c: usize) -> u16 {
        let mask = (1u32 << self.tag_bits) - 1;
        let (t1, t2) = self.hist.tag_folds(c);
        let pc_bits = (pc.get() >> 2) as u32;
        ((pc_bits ^ t1 ^ (t2 << 1)) & mask) as u16
    }

    fn base_index(&self, pc: Pc) -> u32 {
        ((pc.get() >> 2) as u32) & ((self.base.len() - 1) as u32)
    }

    /// Predicts the direction of the conditional branch at `pc` and
    /// returns the metadata needed for [`Tage::update`].
    pub fn predict(&mut self, pc: Pc) -> (bool, TageMeta) {
        let n = self.lengths.len();
        let mut meta = TageMeta {
            indices: [0; MAX_COMPONENTS],
            tags: [0; MAX_COMPONENTS],
            base_index: self.base_index(pc),
            provider: None,
            alt: None,
            provider_pred: false,
            alt_pred: false,
            pred: false,
            provider_new: false,
        };
        for c in 0..n {
            meta.indices[c] = self.index(pc, c);
            meta.tags[c] = self.tag(pc, c);
        }
        // longest-history match provides; next match is the alternate
        for c in (0..n).rev() {
            if self.tables[c][meta.indices[c] as usize].tag == meta.tags[c] {
                if meta.provider.is_none() {
                    meta.provider = Some(c as u8);
                } else {
                    meta.alt = Some(c as u8);
                    break;
                }
            }
        }
        let base_pred = self.base[meta.base_index as usize] >= 2;
        meta.alt_pred = match meta.alt {
            Some(a) => self.tables[a as usize][meta.indices[a as usize] as usize].ctr >= 0,
            None => base_pred,
        };
        match meta.provider {
            Some(p) => {
                let e = &self.tables[p as usize][meta.indices[p as usize] as usize];
                meta.provider_pred = e.ctr >= 0;
                meta.provider_new = e.u == 0 && (e.ctr == 0 || e.ctr == -1);
                meta.pred = if meta.provider_new && self.use_alt_on_na >= 0 {
                    meta.alt_pred
                } else {
                    meta.provider_pred
                };
            }
            None => {
                meta.provider_pred = base_pred;
                meta.alt_pred = base_pred;
                meta.pred = base_pred;
            }
        }
        (meta.pred, meta)
    }

    /// Pushes a (speculative) outcome into the global history. Call for
    /// every fetched branch with its predicted (or known) direction.
    pub fn push_history(&mut self, taken: bool, pc: Pc) {
        self.hist.push(taken, (pc.get() >> 2 & 1) as u8);
    }

    /// Checkpoints the speculative history (take before `push_history`).
    pub fn checkpoint(&self) -> HistoryCheckpoint {
        self.hist.checkpoint()
    }

    /// Restores the history to a checkpoint (misprediction recovery).
    pub fn restore(&mut self, cp: &HistoryCheckpoint) {
        self.hist.restore(cp);
    }

    fn bump(ctr: &mut i8, taken: bool) {
        *ctr = if taken {
            (*ctr + 1).min(3)
        } else {
            (*ctr - 1).max(-4)
        };
    }

    /// Trains the predictor with the resolved outcome. `meta` must be the
    /// metadata from the corresponding [`Tage::predict`].
    pub fn update(&mut self, taken: bool, meta: &TageMeta) {
        self.tick += 1;
        // graceful usefulness aging
        if self.tick & ((1 << 18) - 1) == 0 {
            for t in &mut self.tables {
                for e in t.iter_mut() {
                    e.u >>= 1;
                }
            }
        }
        match meta.provider {
            Some(p) => {
                let p = p as usize;
                // use_alt_on_na bookkeeping for newly-allocated providers
                if meta.provider_new && meta.provider_pred != meta.alt_pred {
                    let delta = if meta.alt_pred == taken { 1 } else { -1 };
                    self.use_alt_on_na = (self.use_alt_on_na + delta).clamp(-8, 7);
                }
                let e = &mut self.tables[p][meta.indices[p] as usize];
                Self::bump(&mut e.ctr, taken);
                if meta.provider_pred != meta.alt_pred {
                    if meta.provider_pred == taken {
                        e.u = (e.u + 1).min(3);
                    } else {
                        e.u = e.u.saturating_sub(1);
                    }
                }
                // When the alt would have been used and the provider is
                // still cold, also train the alt/base.
                if meta.provider_new {
                    match meta.alt {
                        Some(a) => {
                            let a = a as usize;
                            let ae = &mut self.tables[a][meta.indices[a] as usize];
                            Self::bump(&mut ae.ctr, taken);
                        }
                        None => self.update_base(meta.base_index, taken),
                    }
                }
            }
            None => self.update_base(meta.base_index, taken),
        }
        // allocate on a final misprediction, in a component longer than
        // the provider
        if meta.pred != taken {
            let start = meta.provider.map(|p| p as usize + 1).unwrap_or(0);
            self.allocate(start, taken, meta);
        }
    }

    fn update_base(&mut self, idx: u32, taken: bool) {
        let c = &mut self.base[idx as usize];
        *c = if taken {
            (*c + 1).min(3)
        } else {
            c.saturating_sub(1)
        };
    }

    fn allocate(&mut self, start: usize, taken: bool, meta: &TageMeta) {
        let n = self.lengths.len();
        if start >= n {
            return;
        }
        // Seznec-style: randomly skip up to 2 components so allocations
        // spread across history lengths.
        self.lfsr = self.lfsr.wrapping_mul(1664525).wrapping_add(1013904223);
        let skip = (self.lfsr >> 16) as usize % 3;
        let mut allocated = false;
        let mut c = start + skip.min(n - 1 - start.min(n - 1));
        while c < n {
            let e = &mut self.tables[c][meta.indices[c] as usize];
            if e.u == 0 {
                e.tag = meta.tags[c];
                e.ctr = if taken { 0 } else { -1 };
                e.u = 0;
                allocated = true;
                break;
            }
            c += 1;
        }
        if !allocated {
            // nothing free: decay usefulness on the candidate range
            for c in start..n {
                let e = &mut self.tables[c][meta.indices[c] as usize];
                e.u = e.u.saturating_sub(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::PredictorConfig;

    fn tage() -> Tage {
        Tage::new(&PredictorConfig::default())
    }

    /// Drives the predictor as the pipeline would (predict → push →
    /// update) and returns the mispredict count over `outcomes`.
    fn run(t: &mut Tage, pcs: &[u64], outcomes: impl Fn(u64, u64) -> bool, n: u64) -> u64 {
        let mut wrong = 0;
        for i in 0..n {
            for &pc_raw in pcs {
                let pc = Pc::new(pc_raw);
                let actual = outcomes(pc_raw, i);
                let (pred, meta) = t.predict(pc);
                t.push_history(actual, pc); // pipeline pushes; mispredict repair omitted in this driver
                t.update(actual, &meta);
                if pred != actual {
                    wrong += 1;
                }
            }
        }
        wrong
    }

    #[test]
    fn geometric_series_shape() {
        let l = geometric_lengths(12, 4, 640);
        assert_eq!(l.len(), 12);
        assert_eq!(l[0], 4);
        assert_eq!(*l.last().unwrap(), 640);
        assert!(l.windows(2).all(|w| w[0] < w[1]), "{l:?}");
    }

    #[test]
    fn learns_always_taken() {
        let mut t = tage();
        let wrong = run(&mut t, &[0x1000], |_, _| true, 1000);
        assert!(
            wrong < 10,
            "always-taken should be near-perfect, got {wrong}"
        );
    }

    #[test]
    fn learns_short_period_pattern() {
        let mut t = tage();
        // period-4 pattern T T T N — classic loop branch
        let wrong = run(&mut t, &[0x2000], |_, i| i % 4 != 3, 4000);
        assert!(
            (wrong as f64) < 4000.0 * 0.03,
            "period-4 pattern should be learned, got {wrong}/4000"
        );
    }

    #[test]
    fn learns_long_period_pattern_via_long_history() {
        let mut t = tage();
        // period-48 loop needs >5-bit history: bimodal alone cannot learn it
        let wrong = run(&mut t, &[0x3000], |_, i| i % 48 != 47, 20_000);
        assert!(
            (wrong as f64) < 20_000.0 * 0.05,
            "period-48 should be learned by long-history components, got {wrong}/20000"
        );
    }

    #[test]
    fn random_branch_mispredicts_at_chance() {
        let mut t = tage();
        let mut rng = ss_types::rng::Xoshiro256::seed_from_u64(0xDEAD);
        let mut wrong = 0u64;
        for _ in 0..10_000 {
            let pc = Pc::new(0x4000);
            let actual: bool = rng.next_bool();
            let (pred, meta) = t.predict(pc);
            t.push_history(actual, pc);
            t.update(actual, &meta);
            if pred != actual {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / 10_000.0;
        assert!((0.35..=0.65).contains(&rate), "random branch rate {rate}");
    }

    #[test]
    fn distinguishes_many_static_branches() {
        let mut t = tage();
        let pcs: Vec<u64> = (0..64).map(|i| 0x8000 + i * 4).collect();
        // branch k is taken iff k is even — purely PC-dependent
        let wrong = run(&mut t, &pcs, |pc, _| (pc / 4) % 2 == 0, 300);
        let total = 64 * 300;
        assert!(
            (wrong as f64) < total as f64 * 0.02,
            "per-PC bias should be trivial: {wrong}/{total}"
        );
    }

    #[test]
    fn correlated_branches_learned_via_history() {
        let mut t = tage();
        // Branch B outcome equals branch A's previous outcome: needs history.
        let mut wrong_b = 0u64;
        let mut a_prev = false;
        for i in 0..8000u64 {
            let a_out = (i / 3) % 2 == 0;
            let (pa, ma) = t.predict(Pc::new(0x5000));
            let _ = pa;
            t.push_history(a_out, Pc::new(0x5000));
            t.update(a_out, &ma);

            let b_out = a_prev;
            let (pb, mb) = t.predict(Pc::new(0x5010));
            t.push_history(b_out, Pc::new(0x5010));
            t.update(b_out, &mb);
            if i > 2000 && pb != b_out {
                wrong_b += 1;
            }
            a_prev = a_out;
        }
        assert!(
            (wrong_b as f64) < 6000.0 * 0.05,
            "correlation should be captured: {wrong_b}/6000"
        );
    }

    #[test]
    fn checkpoint_restore_isolates_wrong_path() {
        let mut t = tage();
        // warm
        for i in 0..1000u64 {
            let (_, m) = t.predict(Pc::new(0x6000));
            let out = i % 4 != 3;
            t.push_history(out, Pc::new(0x6000));
            t.update(out, &m);
        }
        let cp = t.checkpoint();
        let (pred_before, _) = t.predict(Pc::new(0x6000));
        // pollute history with wrong-path junk
        for _ in 0..30 {
            t.push_history(true, Pc::new(0x9999));
        }
        t.restore(&cp);
        let (pred_after, _) = t.predict(Pc::new(0x6000));
        assert_eq!(
            pred_before, pred_after,
            "restore must reproduce the prediction"
        );
    }
}

ss_types::impl_persist!(TageEntry { tag, ctr, u });
ss_types::impl_persist!(TageMeta {
    indices,
    tags,
    base_index,
    provider,
    alt,
    provider_pred,
    alt_pred,
    pred,
    provider_new,
});
ss_types::impl_persist_state!(Tage { base, tables, use_alt_on_na, tick, lfsr ; hist });
