//! The branch target buffer: 2-way set-associative, 8K entries (Table 1).

use ss_types::Pc;

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    valid: bool,
    tag: u32,
    target: Pc,
}

/// Set-associative branch target buffer with per-set LRU.
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<[BtbEntry; 4]>,
    ways: usize,
    /// LRU order per set: `lru[set][0]` is the most recently used way.
    lru: Vec<[u8; 4]>,
    set_bits: u32,
}

impl Btb {
    /// Creates a BTB with `entries` total entries across `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two split or `ways > 4`.
    pub fn new(entries: u32, ways: u32) -> Self {
        assert!((1..=4).contains(&ways), "1..=4 ways supported");
        assert!(entries.is_power_of_two() && entries >= ways);
        let sets = (entries / ways) as usize;
        assert!(sets.is_power_of_two());
        Btb {
            sets: vec![[BtbEntry::default(); 4]; sets],
            ways: ways as usize,
            lru: vec![[0, 1, 2, 3]; sets],
            set_bits: sets.trailing_zeros(),
        }
    }

    fn set_and_tag(&self, pc: Pc) -> (usize, u32) {
        let idx = pc.get() >> 2;
        let set = (idx & ((1 << self.set_bits) - 1)) as usize;
        let tag = ((idx >> self.set_bits) & 0xFFFF_FFFF) as u32;
        (set, tag)
    }

    fn touch(&mut self, set: usize, way: u8) {
        let order = &mut self.lru[set];
        let pos = order
            .iter()
            .position(|&w| w == way)
            .expect("way in LRU order");
        order[..=pos].rotate_right(1);
    }

    /// Looks up the predicted target for the branch at `pc`, updating LRU
    /// on a hit.
    pub fn lookup(&mut self, pc: Pc) -> Option<Pc> {
        let (set, tag) = self.set_and_tag(pc);
        for way in 0..self.ways {
            let e = self.sets[set][way];
            if e.valid && e.tag == tag {
                self.touch(set, way as u8);
                return Some(e.target);
            }
        }
        None
    }

    /// Installs or updates the target for the branch at `pc`.
    pub fn update(&mut self, pc: Pc, target: Pc) {
        let (set, tag) = self.set_and_tag(pc);
        // hit: update in place
        for way in 0..self.ways {
            let e = &mut self.sets[set][way];
            if e.valid && e.tag == tag {
                e.target = target;
                self.touch(set, way as u8);
                return;
            }
        }
        // miss: fill LRU way
        let victim = self.lru[set][self.ways - 1];
        self.sets[set][victim as usize] = BtbEntry {
            valid: true,
            tag,
            target,
        };
        self.touch(set, victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_update() {
        let mut b = Btb::new(1024, 2);
        let pc = Pc::new(0x1000);
        assert_eq!(b.lookup(pc), None);
        b.update(pc, Pc::new(0x2000));
        assert_eq!(b.lookup(pc), Some(Pc::new(0x2000)));
    }

    #[test]
    fn update_in_place_changes_target() {
        let mut b = Btb::new(1024, 2);
        let pc = Pc::new(0x1000);
        b.update(pc, Pc::new(0x2000));
        b.update(pc, Pc::new(0x3000));
        assert_eq!(b.lookup(pc), Some(Pc::new(0x3000)));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut b = Btb::new(8, 2); // 4 sets
                                    // three PCs mapping to set 0: idx multiples of 4 → pc = 16*k
        let p1 = Pc::new(16);
        let p2 = Pc::new(16 * 5);
        let p3 = Pc::new(16 * 9);
        b.update(p1, Pc::new(1 << 4));
        b.update(p2, Pc::new(2 << 4));
        // touch p1 so p2 becomes LRU
        assert!(b.lookup(p1).is_some());
        b.update(p3, Pc::new(3 << 4));
        assert!(b.lookup(p1).is_some(), "recently-used survives");
        assert_eq!(b.lookup(p2), None, "LRU way evicted");
        assert!(b.lookup(p3).is_some());
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut b = Btb::new(8, 2);
        for k in 0..8u64 {
            b.update(Pc::new(k * 4), Pc::new(0x9000 + k));
        }
        for k in 0..8u64 {
            assert_eq!(b.lookup(Pc::new(k * 4)), Some(Pc::new(0x9000 + k)));
        }
    }

    #[test]
    #[should_panic(expected = "ways")]
    fn too_many_ways_rejected() {
        let _ = Btb::new(1024, 8);
    }
}

ss_types::impl_persist!(BtbEntry { valid, tag, target });
ss_types::impl_persist_state!(Btb { sets, lru });
