//! A plain bimodal (per-PC 2-bit counter) direction predictor, used as the
//! AB3 ablation reference against TAGE.

use ss_types::Pc;

/// Bimodal predictor: a direct-mapped table of 2-bit saturating counters.
#[derive(Debug, Clone)]
pub struct Bimodal {
    counters: Vec<u8>,
}

/// Metadata for the (trivial) bimodal update.
#[derive(Debug, Clone, Copy)]
pub struct BimodalMeta {
    index: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `1 << log_entries` counters.
    pub fn new(log_entries: u32) -> Self {
        Bimodal {
            counters: vec![2; 1 << log_entries],
        }
    }

    fn index(&self, pc: Pc) -> u32 {
        ((pc.get() >> 2) as u32) & ((self.counters.len() - 1) as u32)
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: Pc) -> (bool, BimodalMeta) {
        let index = self.index(pc);
        (self.counters[index as usize] >= 2, BimodalMeta { index })
    }

    /// Trains with the resolved outcome.
    pub fn update(&mut self, taken: bool, meta: &BimodalMeta) {
        let c = &mut self.counters[meta.index as usize];
        *c = if taken {
            (*c + 1).min(3)
        } else {
            c.saturating_sub(1)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_bias_quickly() {
        let mut b = Bimodal::new(12);
        let pc = Pc::new(0x1000);
        for _ in 0..4 {
            let (_, m) = b.predict(pc);
            b.update(false, &m);
        }
        assert!(!b.predict(pc).0);
        for _ in 0..4 {
            let (_, m) = b.predict(pc);
            b.update(true, &m);
        }
        assert!(b.predict(pc).0);
    }

    #[test]
    fn cannot_learn_alternation_better_than_chance() {
        let mut b = Bimodal::new(12);
        let pc = Pc::new(0x2000);
        let mut wrong = 0;
        for i in 0..1000 {
            let (p, m) = b.predict(pc);
            let out = i % 2 == 0;
            if p != out {
                wrong += 1;
            }
            b.update(out, &m);
        }
        assert!(
            wrong >= 400,
            "bimodal must not learn T/N alternation, wrong={wrong}"
        );
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut b = Bimodal::new(12);
        let (p1, m1) = b.predict(Pc::new(0x100));
        let _ = p1;
        for _ in 0..4 {
            b.update(false, &m1);
        }
        assert!(!b.predict(Pc::new(0x100)).0);
        assert!(b.predict(Pc::new(0x104)).0, "neighbouring PC unaffected");
    }
}

ss_types::impl_persist!(BimodalMeta { index });
ss_types::impl_persist_state!(Bimodal { counters });
