//! The return-address stack (32 entries, Table 1) with checkpoint-based
//! misprediction repair.

use ss_types::Pc;

/// Maximum supported RAS capacity (checkpoints are full copies, kept
/// `Copy` to avoid per-branch allocation).
const MAX_RAS: usize = 64;

/// A full-copy RAS checkpoint; restoring undoes all speculative
/// pushes/pops since it was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasCheckpoint {
    stack: [Pc; MAX_RAS],
    top: usize,
    depth: usize,
}

/// Circular return-address stack.
#[derive(Debug, Clone)]
pub struct Ras {
    stack: [Pc; MAX_RAS],
    /// Index of the current top entry (valid when `depth > 0`).
    top: usize,
    /// Live entries (≤ capacity; older entries are overwritten on
    /// overflow, as in hardware).
    depth: usize,
    capacity: usize,
}

impl Ras {
    /// Creates a RAS with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds the supported maximum.
    pub fn new(capacity: u32) -> Self {
        let capacity = capacity as usize;
        assert!(capacity > 0 && capacity <= MAX_RAS);
        Ras {
            stack: [Pc::new(0); MAX_RAS],
            top: 0,
            depth: 0,
            capacity,
        }
    }

    /// Pushes a return address (on predicting/fetching a call).
    pub fn push(&mut self, ret: Pc) {
        self.top = (self.top + 1) % self.capacity;
        self.stack[self.top] = ret;
        self.depth = (self.depth + 1).min(self.capacity);
    }

    /// Pops the predicted return address (on fetching a return). Returns
    /// `None` when empty (cold or underflowed).
    pub fn pop(&mut self) -> Option<Pc> {
        if self.depth == 0 {
            return None;
        }
        let v = self.stack[self.top];
        self.top = (self.top + self.capacity - 1) % self.capacity;
        self.depth -= 1;
        Some(v)
    }

    /// Current top without popping.
    pub fn peek(&self) -> Option<Pc> {
        (self.depth > 0).then(|| self.stack[self.top])
    }

    /// Takes a checkpoint for squash repair.
    pub fn checkpoint(&self) -> RasCheckpoint {
        RasCheckpoint {
            stack: self.stack,
            top: self.top,
            depth: self.depth,
        }
    }

    /// Restores to a checkpoint.
    pub fn restore(&mut self, cp: &RasCheckpoint) {
        self.stack = cp.stack;
        self.top = cp.top;
        self.depth = cp.depth;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut r = Ras::new(32);
        r.push(Pc::new(0x100));
        r.push(Pc::new(0x200));
        assert_eq!(r.pop(), Some(Pc::new(0x200)));
        assert_eq!(r.pop(), Some(Pc::new(0x100)));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut r = Ras::new(4);
        for i in 0..6u64 {
            r.push(Pc::new(0x100 + i));
        }
        // last 4 survive: 0x105, 0x104, 0x103, 0x102
        assert_eq!(r.pop(), Some(Pc::new(0x105)));
        assert_eq!(r.pop(), Some(Pc::new(0x104)));
        assert_eq!(r.pop(), Some(Pc::new(0x103)));
        assert_eq!(r.pop(), Some(Pc::new(0x102)));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn checkpoint_restores_speculative_damage() {
        let mut r = Ras::new(8);
        r.push(Pc::new(0x1));
        r.push(Pc::new(0x2));
        let cp = r.checkpoint();
        // wrong path: pop both, push junk
        let _ = r.pop();
        let _ = r.pop();
        r.push(Pc::new(0xBAD));
        r.restore(&cp);
        assert_eq!(r.pop(), Some(Pc::new(0x2)));
        assert_eq!(r.pop(), Some(Pc::new(0x1)));
    }

    #[test]
    fn peek_does_not_pop() {
        let mut r = Ras::new(8);
        r.push(Pc::new(0x7));
        assert_eq!(r.peek(), Some(Pc::new(0x7)));
        assert_eq!(r.pop(), Some(Pc::new(0x7)));
        assert_eq!(r.peek(), None);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = Ras::new(0);
    }
}

ss_types::impl_persist!(RasCheckpoint { stack, top, depth });
ss_types::impl_persist_state!(Ras { stack, top, depth });
