//! Randomized (deterministic, seeded) tests for the branch-prediction
//! substrate: the RAS against a reference stack, BTB against a reference
//! map, and TAGE checkpoint/restore correctness under arbitrary
//! speculation. Formerly proptest properties; now plain loops over the
//! vendored [`Xoshiro256`] generator so the crate builds offline.

use ss_bpred::{Btb, Ras, Tage};
use ss_types::rng::Xoshiro256;
use ss_types::{Pc, PredictorConfig};

/// `Some(push value)` or `None` (pop), like the old proptest strategy.
fn gen_op(rng: &mut Xoshiro256) -> Option<u16> {
    if rng.next_bool() {
        Some(rng.next_below(1 << 16) as u16)
    } else {
        None
    }
}

/// The RAS behaves as a bounded stack that drops the *oldest* entry
/// on overflow.
#[test]
fn ras_matches_bounded_stack() {
    let mut rng = Xoshiro256::seed_from_u64(0x4A5);
    for case in 0..64 {
        let cap = 8usize;
        let mut ras = Ras::new(cap as u32);
        let mut model: Vec<u64> = Vec::new();
        let ops = 1 + rng.next_below(199) as usize;
        for _ in 0..ops {
            match gen_op(&mut rng) {
                Some(v) => {
                    ras.push(Pc::new(v as u64));
                    model.push(v as u64);
                    if model.len() > cap {
                        model.remove(0);
                    }
                }
                None => {
                    let got = ras.pop().map(|p| p.get());
                    let want = model.pop();
                    assert_eq!(got, want, "case {case}");
                }
            }
            assert_eq!(
                ras.peek().map(|p| p.get()),
                model.last().copied(),
                "case {case}"
            );
        }
    }
}

/// Checkpoint/restore makes the RAS exactly forget the speculation.
#[test]
fn ras_checkpoint_is_exact() {
    let mut rng = Xoshiro256::seed_from_u64(0xC4EC);
    for case in 0..64 {
        let mut a = Ras::new(16);
        let mut b = Ras::new(16);
        let before_len = rng.next_below(40) as usize;
        for _ in 0..before_len {
            match gen_op(&mut rng) {
                Some(v) => {
                    a.push(Pc::new(v as u64));
                    b.push(Pc::new(v as u64));
                }
                None => {
                    let _ = a.pop();
                    let _ = b.pop();
                }
            }
        }
        let cp = a.checkpoint();
        let spec_len = rng.next_below(40) as usize;
        for _ in 0..spec_len {
            match gen_op(&mut rng) {
                Some(v) => a.push(Pc::new(v as u64)),
                None => {
                    let _ = a.pop();
                }
            }
        }
        a.restore(&cp);
        // both stacks must now behave identically
        for _ in 0..20 {
            assert_eq!(a.pop(), b.pop(), "case {case}");
        }
    }
}

/// The BTB always returns the most recently installed target for a PC
/// still resident, and never a target installed for a different PC.
#[test]
fn btb_returns_latest_target() {
    let mut rng = Xoshiro256::seed_from_u64(0xB7B);
    for case in 0..64 {
        let mut btb = Btb::new(1024, 2);
        let mut latest: std::collections::HashMap<u64, u64> = Default::default();
        let ops = 1 + rng.next_below(199) as usize;
        for _ in 0..ops {
            let pc_idx = rng.next_below(64);
            let tgt = rng.next_below(1024);
            let pc = Pc::new(0x1000 + pc_idx * 4);
            btb.update(pc, Pc::new(tgt));
            latest.insert(pc.get(), tgt);
            match btb.lookup(pc) {
                Some(hit) => assert_eq!(hit.get(), latest[&pc.get()], "case {case}"),
                None => panic!("case {case}: just-installed entry must hit"),
            }
        }
        // Residency may have evicted entries, but any hit must be exact.
        for (&pc, &tgt) in &latest {
            if let Some(hit) = btb.lookup(Pc::new(pc)) {
                assert_eq!(hit.get(), tgt, "case {case}");
            }
        }
    }
}

/// TAGE: restoring a checkpoint after arbitrary wrong-path pushes
/// reproduces the exact same prediction as never having speculated.
#[test]
fn tage_checkpoint_isolates_wrong_path() {
    let mut rng = Xoshiro256::seed_from_u64(0x7A6E);
    for case in 0..64 {
        let warm_len = 50 + rng.next_below(100) as usize;
        let junk_len = rng.next_below(60) as usize;
        let probe_pc = rng.next_below(512);
        let cfg = PredictorConfig::default();
        let mut a = Tage::new(&cfg);
        let mut b = Tage::new(&cfg);
        for i in 0..warm_len {
            let t = rng.next_bool();
            let pc = Pc::new(0x2000 + (i as u64 % 8) * 4);
            let (_, ma) = a.predict(pc);
            let (_, mb) = b.predict(pc);
            a.push_history(t, pc);
            b.push_history(t, pc);
            a.update(t, &ma);
            b.update(t, &mb);
        }
        let cp = a.checkpoint();
        for _ in 0..junk_len {
            a.push_history(rng.next_bool(), Pc::new(0x9999));
        }
        a.restore(&cp);
        let pc = Pc::new(0x2000 + probe_pc * 4);
        let (pa, _) = a.predict(pc);
        let (pb, _) = b.predict(pc);
        assert_eq!(pa, pb, "case {case}");
    }
}
