//! Property-based tests for the branch-prediction substrate: the RAS
//! against a reference stack, BTB against a reference map, and TAGE
//! checkpoint/restore correctness under arbitrary speculation.

use proptest::prelude::*;
use ss_bpred::{Btb, Ras, Tage};
use ss_types::{Pc, PredictorConfig};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The RAS behaves as a bounded stack that drops the *oldest* entry
    /// on overflow.
    #[test]
    fn ras_matches_bounded_stack(ops in proptest::collection::vec(any::<Option<u16>>(), 1..200)) {
        let cap = 8usize;
        let mut ras = Ras::new(cap as u32);
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    ras.push(Pc::new(v as u64));
                    model.push(v as u64);
                    if model.len() > cap {
                        model.remove(0);
                    }
                }
                None => {
                    let got = ras.pop().map(|p| p.get());
                    let want = model.pop();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(ras.peek().map(|p| p.get()), model.last().copied());
        }
    }

    /// Checkpoint/restore makes the RAS exactly forget the speculation.
    #[test]
    fn ras_checkpoint_is_exact(
        before in proptest::collection::vec(any::<Option<u16>>(), 0..40),
        spec in proptest::collection::vec(any::<Option<u16>>(), 0..40),
    ) {
        let mut a = Ras::new(16);
        let mut b = Ras::new(16);
        for op in &before {
            match op {
                Some(v) => { a.push(Pc::new(*v as u64)); b.push(Pc::new(*v as u64)); }
                None => { let _ = a.pop(); let _ = b.pop(); }
            }
        }
        let cp = a.checkpoint();
        for op in &spec {
            match op {
                Some(v) => a.push(Pc::new(*v as u64)),
                None => { let _ = a.pop(); },
            }
        }
        a.restore(&cp);
        // both stacks must now behave identically
        for _ in 0..20 {
            prop_assert_eq!(a.pop(), b.pop());
        }
    }

    /// The BTB always returns the most recently installed target for a PC
    /// still resident, and never a target installed for a different PC.
    #[test]
    fn btb_returns_latest_target(ops in proptest::collection::vec((0u64..64, 0u64..1024), 1..200)) {
        let mut btb = Btb::new(1024, 2);
        let mut latest: std::collections::HashMap<u64, u64> = Default::default();
        for (pc_idx, tgt) in ops {
            let pc = Pc::new(0x1000 + pc_idx * 4);
            btb.update(pc, Pc::new(tgt));
            latest.insert(pc.get(), tgt);
            if let Some(hit) = btb.lookup(pc) {
                prop_assert_eq!(hit.get(), latest[&pc.get()]);
            } else {
                prop_assert!(false, "just-installed entry must hit");
            }
        }
        // Residency may have evicted entries, but any hit must be exact.
        for (&pc, &tgt) in &latest {
            if let Some(hit) = btb.lookup(Pc::new(pc)) {
                prop_assert_eq!(hit.get(), tgt);
            }
        }
    }

    /// TAGE: restoring a checkpoint after arbitrary wrong-path pushes
    /// reproduces the exact same prediction as never having speculated.
    #[test]
    fn tage_checkpoint_isolates_wrong_path(
        warm in proptest::collection::vec(any::<bool>(), 50..150),
        junk in proptest::collection::vec(any::<bool>(), 0..60),
        probe_pc in 0u64..512,
    ) {
        let cfg = PredictorConfig::default();
        let mut a = Tage::new(&cfg);
        let mut b = Tage::new(&cfg);
        for (i, &t) in warm.iter().enumerate() {
            let pc = Pc::new(0x2000 + (i as u64 % 8) * 4);
            let (_, ma) = a.predict(pc);
            let (_, mb) = b.predict(pc);
            a.push_history(t, pc);
            b.push_history(t, pc);
            a.update(t, &ma);
            b.update(t, &mb);
        }
        let cp = a.checkpoint();
        for &t in &junk {
            a.push_history(t, Pc::new(0x9999));
        }
        a.restore(&cp);
        let pc = Pc::new(0x2000 + probe_pc * 4);
        let (pa, _) = a.predict(pc);
        let (pb, _) = b.predict(pc);
        prop_assert_eq!(pa, pb);
    }
}
