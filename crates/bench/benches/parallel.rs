//! Parallel-engine bench: the same uncached prewarm sweep with one
//! worker vs two, so the scaling of the execution engine is visible on
//! multi-core hosts (on a single-core host the two cases should tie).
//! Plain `harness = false` timing binary — no external bench framework.

use ss_bench::time_case;
use ss_core::RunLength;
use ss_harness::{configs, prewarm, Session};
use ss_types::CancelFlag;

const ITERS: u32 = 5;

/// One sweep of the Figure 5 delay-4 configurations over every
/// benchmark, freshly simulated (no cache directory, fresh session per
/// iteration) so the workers always have real work to steal.
fn sweep(jobs: usize) {
    let cfgs = vec![
        configs::baseline(4),
        configs::spec_sched(4, true),
        configs::spec_sched_crit(4),
    ];
    let len = RunLength {
        warmup: 500,
        measure: 5_000,
    };
    let mut sess = Session::new(len, None);
    // lanes = 1: this bench isolates worker scaling, not lane batching.
    prewarm(&mut sess, &cfgs, jobs, 1, &CancelFlag::new(), false);
}

fn main() {
    for jobs in [1usize, 2] {
        time_case("parallel_prewarm", &format!("jobs{jobs}"), ITERS, || {
            sweep(jobs)
        });
    }
}
