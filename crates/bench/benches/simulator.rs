//! Simulator-throughput and component microbenchmarks: how fast the
//! substrate itself runs (µ-ops simulated per second, predictor and cache
//! operation costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ss_bench::{machine, mini_run, BENCH_LEN};
use ss_bpred::Tage;
use ss_mem::{BankArbiter, SetAssocCache};
use ss_types::{
    Addr, BankedL1dConfig, CacheGeometry, Cycle, Pc, PredictorConfig, SchedPolicyKind as P,
};
use ss_workloads::{kernels, TraceSource};
use std::hint::black_box;
use std::time::Duration;

/// End-to-end pipeline throughput on contrasting workloads.
fn pipeline_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_throughput");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Elements(BENCH_LEN.warmup + BENCH_LEN.measure));
    for (name, k) in [
        ("fp_compute", kernels::fp_compute as fn(u64) -> _),
        ("crafty_like", kernels::crafty_like),
        ("branchy_int", kernels::branchy_int),
        ("ptr_chase_big", kernels::ptr_chase_big),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &k, |b, k| {
            b.iter(|| black_box(mini_run(machine(4, P::AlwaysHit, true, false), k(1))))
        });
    }
    g.finish();
}

/// TAGE predict + history push + update per branch.
fn tage_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("tage");
    g.throughput(Throughput::Elements(1));
    let mut t = Tage::new(&PredictorConfig::default());
    let mut i = 0u64;
    g.bench_function("predict_update", |b| {
        b.iter(|| {
            i += 1;
            let pc = Pc::new(0x1000 + (i % 64) * 4);
            let outcome = i % 7 < 4;
            let (p, meta) = t.predict(pc);
            t.push_history(outcome, pc);
            t.update(outcome, &meta);
            black_box(p)
        })
    });
    g.finish();
}

/// Cache lookup/fill on a warmed set-associative cache.
fn cache_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    let mut cache =
        SetAssocCache::new(CacheGeometry { capacity_bytes: 32 * 1024, ways: 8, line_bytes: 64 });
    for i in 0..512u64 {
        cache.fill(Addr::new(i * 64), false);
    }
    let mut i = 0u64;
    g.bench_function("lookup_warm", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9);
            black_box(cache.lookup(Addr::new((i % (32 * 1024)) & !7)))
        })
    });
    g.finish();
}

/// Banked-L1D arbitration per access.
fn bank_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("bank_arbiter");
    g.throughput(Throughput::Elements(1));
    let mut arb = BankArbiter::new(BankedL1dConfig::default(), 64, 64);
    let mut cycle = 0u64;
    let mut i = 0u64;
    g.bench_function("request", |b| {
        b.iter(|| {
            i += 1;
            if i % 2 == 0 {
                cycle += 1;
            }
            black_box(arb.request(Addr::new((i * 520) % 32768), Cycle::new(cycle)))
        })
    });
    g.finish();
}

/// Trace generation alone (the workload substrate's cost).
fn trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_gen");
    g.throughput(Throughput::Elements(1));
    let mut t = kernels::mix_int(1).into_source();
    g.bench_function("mix_int/next_uop", |b| b.iter(|| black_box(t.next_uop())));
    g.finish();
}

criterion_group!(simulator, pipeline_throughput, tage_ops, cache_ops, bank_ops, trace_generation);
criterion_main!(simulator);
