//! Simulator-throughput and component microbenchmarks: how fast the
//! substrate itself runs (µ-ops simulated per second, predictor and cache
//! operation costs). Plain `harness = false` timing binary — no external
//! bench framework.

use ss_bench::{machine, mini_run, time_case};
use ss_bpred::Tage;
use ss_mem::{BankArbiter, SetAssocCache};
use ss_types::{
    Addr, BankedL1dConfig, CacheGeometry, Cycle, Pc, PredictorConfig, SchedPolicyKind as P,
};
use ss_workloads::{kernels, TraceSource};
use std::hint::black_box;

/// End-to-end pipeline throughput on contrasting workloads.
fn pipeline_throughput() {
    for (name, k) in [
        ("fp_compute", kernels::fp_compute as fn(u64) -> _),
        ("crafty_like", kernels::crafty_like),
        ("branchy_int", kernels::branchy_int),
        ("ptr_chase_big", kernels::ptr_chase_big),
    ] {
        time_case("pipeline_throughput", name, 10, || {
            mini_run(machine(4, P::AlwaysHit, true, false), k(1))
        });
    }
}

/// TAGE predict + history push + update per branch.
fn tage_ops() {
    let mut t = Tage::new(&PredictorConfig::default());
    let mut i = 0u64;
    time_case("tage", "predict_update_x1k", 100, || {
        for _ in 0..1_000 {
            i += 1;
            let pc = Pc::new(0x1000 + (i % 64) * 4);
            let outcome = i % 7 < 4;
            let (p, meta) = t.predict(pc);
            t.push_history(outcome, pc);
            t.update(outcome, &meta);
            black_box(p);
        }
    });
}

/// Cache lookup/fill on a warmed set-associative cache.
fn cache_ops() {
    let mut cache = SetAssocCache::new(CacheGeometry {
        capacity_bytes: 32 * 1024,
        ways: 8,
        line_bytes: 64,
    });
    for i in 0..512u64 {
        cache.fill(Addr::new(i * 64), false);
    }
    let mut i = 0u64;
    time_case("cache", "lookup_warm_x1k", 100, || {
        for _ in 0..1_000 {
            i = i.wrapping_add(0x9E37_79B9);
            black_box(cache.lookup(Addr::new((i % (32 * 1024)) & !7)));
        }
    });
}

/// Banked-L1D arbitration per access.
fn bank_ops() {
    let mut arb = BankArbiter::new(BankedL1dConfig::default(), 64, 64);
    let mut cycle = 0u64;
    let mut i = 0u64;
    time_case("bank_arbiter", "request_x1k", 100, || {
        for _ in 0..1_000 {
            i += 1;
            if i.is_multiple_of(2) {
                cycle += 1;
            }
            black_box(arb.request(Addr::new((i * 520) % 32768), Cycle::new(cycle)));
        }
    });
}

/// Trace generation alone (the workload substrate's cost).
fn trace_generation() {
    let mut t = kernels::mix_int(1).into_source();
    time_case("trace_gen", "mix_int/next_uop_x1k", 100, || {
        for _ in 0..1_000 {
            black_box(t.next_uop());
        }
    });
}

fn main() {
    pipeline_throughput();
    tage_ops();
    cache_ops();
    bank_ops();
    trace_generation();
}
