//! Ablation benches for the design choices DESIGN.md calls out:
//! AB1 (filter silencing bit), AB2 (Rivers line buffer), AB3 (TAGE vs
//! bimodal direction prediction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_bench::{machine, mini_run};
use ss_types::{BankedL1dConfig, PredictorConfig, SchedPolicyKind as P, SimConfig};
use ss_workloads::kernels;
use std::hint::black_box;
use std::time::Duration;

/// AB1: per-PC filter with vs without the silencing bit, on the unstable
/// hot/cold workload the bit exists for.
fn ablation_silence(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_silence");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, p) in [("silencing", P::FilterAndCounter), ("no_silencing", P::FilterNoSilence)] {
        g.bench_function(BenchmarkId::new("hot_cold_mix", label), |b| {
            b.iter(|| black_box(mini_run(machine(4, p, true, false), kernels::hot_cold_mix(1))))
        });
    }
    g.finish();
}

/// AB2: banked L1D with vs without the single line buffer.
fn ablation_linebuffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_linebuffer");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, line_buffer) in [("line_buffer", true), ("plain_banked", false)] {
        let cfg = SimConfig::builder()
            .issue_to_execute_delay(4)
            .sched_policy(P::AlwaysHit)
            .l1d_banking(Some(BankedL1dConfig { line_buffer, ..Default::default() }))
            .build();
        g.bench_function(BenchmarkId::new("grid_stencil", label), |b| {
            let cfg = cfg.clone();
            b.iter(|| black_box(mini_run(cfg.clone(), kernels::grid_stencil(1))))
        });
    }
    g.finish();
}

/// AB3: TAGE vs bimodal direction prediction on patterned branches.
fn ablation_bpred(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bpred");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, bimodal) in [("tage", false), ("bimodal", true)] {
        let cfg = SimConfig::builder()
            .issue_to_execute_delay(4)
            .sched_policy(P::AlwaysHit)
            .banked_l1d(true)
            .predictor(PredictorConfig { bimodal_only: bimodal, ..Default::default() })
            .build();
        g.bench_function(BenchmarkId::new("mix_int", label), |b| {
            let cfg = cfg.clone();
            b.iter(|| black_box(mini_run(cfg.clone(), kernels::mix_int(1))))
        });
    }
    g.finish();
}

criterion_group!(ablations, ablation_silence, ablation_linebuffer, ablation_bpred);
criterion_main!(ablations);
