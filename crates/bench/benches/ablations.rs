//! Ablation benches for the design choices DESIGN.md calls out:
//! AB1 (filter silencing bit), AB2 (Rivers line buffer), AB3 (TAGE vs
//! bimodal direction prediction). Plain `harness = false` timing binary —
//! no external bench framework.

use ss_bench::{machine, mini_run, time_case};
use ss_types::{BankedL1dConfig, PredictorConfig, SchedPolicyKind as P, SimConfig};
use ss_workloads::kernels;

const ITERS: u32 = 10;

/// AB1: per-PC filter with vs without the silencing bit, on the unstable
/// hot/cold workload the bit exists for.
fn ablation_silence() {
    for (label, p) in [
        ("silencing", P::FilterAndCounter),
        ("no_silencing", P::FilterNoSilence),
    ] {
        time_case(
            "ablation_silence",
            &format!("hot_cold_mix/{label}"),
            ITERS,
            || mini_run(machine(4, p, true, false), kernels::hot_cold_mix(1)),
        );
    }
}

/// AB2: banked L1D with vs without the single line buffer.
fn ablation_linebuffer() {
    for (label, line_buffer) in [("line_buffer", true), ("plain_banked", false)] {
        let cfg = SimConfig::builder()
            .issue_to_execute_delay(4)
            .sched_policy(P::AlwaysHit)
            .l1d_banking(Some(BankedL1dConfig {
                line_buffer,
                ..Default::default()
            }))
            .build();
        time_case(
            "ablation_linebuffer",
            &format!("grid_stencil/{label}"),
            ITERS,
            || mini_run(cfg.clone(), kernels::grid_stencil(1)),
        );
    }
}

/// AB3: TAGE vs bimodal direction prediction on patterned branches.
fn ablation_bpred() {
    for (label, bimodal) in [("tage", false), ("bimodal", true)] {
        let cfg = SimConfig::builder()
            .issue_to_execute_delay(4)
            .sched_policy(P::AlwaysHit)
            .banked_l1d(true)
            .predictor(PredictorConfig {
                bimodal_only: bimodal,
                ..Default::default()
            })
            .build();
        time_case("ablation_bpred", &format!("mix_int/{label}"), ITERS, || {
            mini_run(cfg.clone(), kernels::mix_int(1))
        });
    }
}

fn main() {
    ablation_silence();
    ablation_linebuffer();
    ablation_bpred();
}
