//! One bench group per paper table/figure: each case measures the
//! miniature regeneration of that artifact (the representative
//! configuration × workload pairs its rows are built from). Plain
//! `harness = false` timing binary — no external bench framework.

use ss_bench::{machine, mini_run, time_case};
use ss_types::SchedPolicyKind as P;
use ss_workloads::kernels;

const ITERS: u32 = 10;

/// Table 2: baseline characterization of representative kernels.
fn table2() {
    for (name, k) in [
        ("fp_compute", kernels::fp_compute as fn(u64) -> _),
        ("crafty_like", kernels::crafty_like),
        ("stream_all_miss", kernels::stream_all_miss),
    ] {
        time_case("table2", &format!("Baseline_0/{name}"), ITERS, || {
            mini_run(machine(0, P::Conservative, false, false), k(1))
        });
    }
}

/// Figure 3: conservative scheduling across the delay sweep.
fn fig3() {
    for d in [0u64, 2, 4, 6] {
        time_case("fig3", &format!("Baseline_{d}/list_walk"), ITERS, || {
            mini_run(
                machine(d, P::Conservative, false, false),
                kernels::list_walk(1),
            )
        });
    }
}

/// Figure 4: Always-Hit speculative scheduling, ported vs banked.
fn fig4() {
    for (label, banked) in [("ported", false), ("banked", true)] {
        time_case(
            "fig4",
            &format!("SpecSched_4/crafty/{label}"),
            ITERS,
            || {
                mini_run(
                    machine(4, P::AlwaysHit, banked, false),
                    kernels::crafty_like(1),
                )
            },
        );
    }
}

/// Figure 5: Schedule Shifting.
fn fig5() {
    for (label, shift) in [("base", false), ("shifted", true)] {
        time_case(
            "fig5",
            &format!("SpecSched_4/stencil_conflict/{label}"),
            ITERS,
            || {
                mini_run(
                    machine(4, P::AlwaysHit, true, shift),
                    kernels::stencil_conflict(1),
                )
            },
        );
    }
}

/// Figure 7: hit/miss filtering policies.
fn fig7() {
    for (label, p) in [
        ("AlwaysHit", P::AlwaysHit),
        ("Ctr", P::GlobalCounter),
        ("Filter", P::FilterAndCounter),
    ] {
        time_case("fig7", &format!("stream_all_miss/{label}"), ITERS, || {
            mini_run(machine(4, p, true, false), kernels::stream_all_miss(1))
        });
    }
}

/// Figure 8: the combined and criticality-gated policies.
fn fig8() {
    for (label, p, shift) in [
        ("SpecSched_4", P::AlwaysHit, false),
        ("Combined", P::FilterAndCounter, true),
        ("Crit", P::Criticality, true),
    ] {
        time_case("fig8", &format!("xalanc_like/{label}"), ITERS, || {
            mini_run(machine(4, p, true, shift), kernels::xalanc_like(1))
        });
    }
}

/// §5.3 delay sweep of the criticality policy.
fn delay_sweep() {
    for d in [2u64, 4, 6] {
        time_case(
            "delay_sweep",
            &format!("SpecSched_{d}_Crit/mix_int"),
            ITERS,
            || mini_run(machine(d, P::Criticality, true, true), kernels::mix_int(1)),
        );
    }
}

fn main() {
    table2();
    fig3();
    fig4();
    fig5();
    fig7();
    fig8();
    delay_sweep();
}
