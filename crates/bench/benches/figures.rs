//! One Criterion group per paper table/figure: each benchmark measures
//! the miniature regeneration of that artifact (the representative
//! configuration × workload pairs its rows are built from).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_bench::{machine, mini_run};
use ss_types::SchedPolicyKind as P;
use ss_workloads::kernels;
use std::hint::black_box;
use std::time::Duration;

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

/// Table 2: baseline characterization of representative kernels.
fn table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (name, k) in [
        ("fp_compute", kernels::fp_compute as fn(u64) -> _),
        ("crafty_like", kernels::crafty_like),
        ("stream_all_miss", kernels::stream_all_miss),
    ] {
        g.bench_with_input(BenchmarkId::new("Baseline_0", name), &k, |b, k| {
            b.iter(|| black_box(mini_run(machine(0, P::Conservative, false, false), k(1))))
        });
    }
    g.finish();
}

/// Figure 3: conservative scheduling across the delay sweep.
fn fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for d in [0u64, 2, 4, 6] {
        g.bench_with_input(BenchmarkId::new("Baseline_d/list_walk", d), &d, |b, &d| {
            b.iter(|| black_box(mini_run(machine(d, P::Conservative, false, false), kernels::list_walk(1))))
        });
    }
    g.finish();
}

/// Figure 4: Always-Hit speculative scheduling, ported vs banked.
fn fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, banked) in [("ported", false), ("banked", true)] {
        g.bench_with_input(BenchmarkId::new("SpecSched_4/crafty", label), &banked, |b, &banked| {
            b.iter(|| black_box(mini_run(machine(4, P::AlwaysHit, banked, false), kernels::crafty_like(1))))
        });
    }
    g.finish();
}

/// Figure 5: Schedule Shifting.
fn fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, shift) in [("base", false), ("shifted", true)] {
        g.bench_with_input(
            BenchmarkId::new("SpecSched_4/stencil_conflict", label),
            &shift,
            |b, &shift| {
                b.iter(|| {
                    black_box(mini_run(machine(4, P::AlwaysHit, true, shift), kernels::stencil_conflict(1)))
                })
            },
        );
    }
    g.finish();
}

/// Figure 7: hit/miss filtering policies.
fn fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, p) in
        [("AlwaysHit", P::AlwaysHit), ("Ctr", P::GlobalCounter), ("Filter", P::FilterAndCounter)]
    {
        g.bench_with_input(BenchmarkId::new("stream_all_miss", label), &p, |b, &p| {
            b.iter(|| black_box(mini_run(machine(4, p, true, false), kernels::stream_all_miss(1))))
        });
    }
    g.finish();
}

/// Figure 8: the combined and criticality-gated policies.
fn fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, p, shift) in [
        ("SpecSched_4", P::AlwaysHit, false),
        ("Combined", P::FilterAndCounter, true),
        ("Crit", P::Criticality, true),
    ] {
        g.bench_function(BenchmarkId::new("xalanc_like", label), |b| {
            b.iter(|| black_box(mini_run(machine(4, p, true, shift), kernels::xalanc_like(1))))
        });
    }
    g.finish();
}

/// §5.3 delay sweep of the criticality policy.
fn delay_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("delay_sweep");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for d in [2u64, 4, 6] {
        g.bench_with_input(BenchmarkId::new("SpecSched_d_Crit/mix_int", d), &d, |b, &d| {
            b.iter(|| black_box(mini_run(machine(d, P::Criticality, true, true), kernels::mix_int(1))))
        });
    }
    g.finish();
}

criterion_group!(
    name = figures;
    config = { let mut c = Criterion::default(); configure(&mut c); c };
    targets = table2, fig3, fig4, fig5, fig7, fig8, delay_sweep
);
criterion_main!(figures);
