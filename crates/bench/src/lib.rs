//! Shared helpers for the Criterion benches.
//!
//! Each bench regenerates a miniature version of one paper table/figure:
//! the same configurations and workloads as `ss-harness`, scaled down so
//! `cargo bench` completes in minutes. The full-scale numbers come from
//! `cargo run -r -p ss-harness --bin experiments` and are recorded in
//! EXPERIMENTS.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ss_core::{run_kernel, RunLength};
use ss_types::{SchedPolicyKind, SimConfig, SimStats};
use ss_workloads::KernelSpec;

/// Miniature run length used inside bench iterations.
pub const BENCH_LEN: RunLength = RunLength { warmup: 500, measure: 4_000 };

/// Builds one of the paper's machine shapes.
pub fn machine(delay: u64, policy: SchedPolicyKind, banked: bool, shifting: bool) -> SimConfig {
    SimConfig::builder()
        .issue_to_execute_delay(delay)
        .sched_policy(policy)
        .banked_l1d(banked)
        .schedule_shifting(shifting)
        .build()
}

/// Runs a miniature simulation (the unit of work every bench measures).
pub fn mini_run(cfg: SimConfig, spec: KernelSpec) -> SimStats {
    run_kernel(cfg, spec, BENCH_LEN)
}
