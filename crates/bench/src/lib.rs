//! Shared helpers for the dependency-free benches.
//!
//! Each bench regenerates a miniature version of one paper table/figure:
//! the same configurations and workloads as `ss-harness`, scaled down so
//! `cargo bench` completes in minutes. The benches are plain
//! `harness = false` binaries timed with [`std::time::Instant`] (no
//! external bench framework, so the workspace builds offline). The
//! full-scale numbers come from
//! `cargo run -r -p ss-harness --bin experiments` and are recorded in
//! EXPERIMENTS.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ss_core::{RunLength, RunRequest};
use ss_types::{SchedPolicyKind, SimConfig, SimStats};
use ss_workloads::KernelSpec;
use std::time::Instant;

/// Miniature run length used inside bench iterations.
pub const BENCH_LEN: RunLength = RunLength {
    warmup: 500,
    measure: 4_000,
};

/// Builds one of the paper's machine shapes.
pub fn machine(delay: u64, policy: SchedPolicyKind, banked: bool, shifting: bool) -> SimConfig {
    SimConfig::builder()
        .issue_to_execute_delay(delay)
        .sched_policy(policy)
        .banked_l1d(banked)
        .schedule_shifting(shifting)
        .build()
}

/// Runs a miniature simulation (the unit of work every bench measures).
///
/// Benches measure known-good configurations, so a failed run aborts the
/// bench with the simulator's error rather than timing garbage.
pub fn mini_run(cfg: SimConfig, spec: KernelSpec) -> SimStats {
    match RunRequest::kernel(spec)
        .custom_config(cfg)
        .length(BENCH_LEN)
        .execute()
    {
        Ok(outcome) => outcome.stats,
        Err(e) => panic!("bench run failed: {e}"),
    }
}

/// Times `iters` calls of `f` and prints one `group/name` result line
/// with the median per-iteration latency.
///
/// Runs one untimed warmup call, then times each iteration separately so
/// the median is robust to scheduler noise. The closure's return value is
/// passed through [`std::hint::black_box`] to keep the work observable.
pub fn time_case<R>(group: &str, name: &str, iters: u32, mut f: impl FnMut() -> R) {
    std::hint::black_box(f());
    let mut samples: Vec<u128> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_nanos());
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let total: u128 = samples.iter().sum();
    println!(
        "{group}/{name}: median {} per iter ({iters} iters, total {})",
        fmt_ns(median),
        fmt_ns(total)
    );
}

/// Formats a nanosecond count with a human-friendly unit.
fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(5), "5ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn time_case_runs_the_closure() {
        let mut calls = 0u32;
        time_case("test", "counter", 3, || calls += 1);
        assert_eq!(calls, 4); // warmup + 3 timed iters
    }
}
