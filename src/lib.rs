//! Facade crate for the speculative-scheduling simulator workspace.
//!
//! A from-scratch Rust reproduction of Perais et al., *Cost-Effective
//! Speculative Scheduling in High Performance Processors* (ISCA 2015).
//! This crate re-exports the workspace's public API so downstream users and
//! the examples can depend on a single crate:
//!
//! ```
//! use speculative_scheduling::prelude::*;
//!
//! let cfg = SimConfig::builder()
//!     .issue_to_execute_delay(4)
//!     .sched_policy(SchedPolicyKind::AlwaysHit)
//!     .build();
//! assert_eq!(cfg.frontend_depth(), 11);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ss_bpred as bpred;
pub use ss_core as core;
pub use ss_frontend as frontend;
pub use ss_harness as harness;
pub use ss_isa as isa;
pub use ss_mem as mem;
pub use ss_memdep as memdep;
pub use ss_oracle as oracle;
pub use ss_sched as sched;
pub use ss_snapshot as snapshot;
pub use ss_trace as trace;
pub use ss_types as types;
pub use ss_workloads as workloads;

/// Convenient single import for examples and quick experiments.
pub mod prelude {
    pub use ss_types::{
        Addr, ArchReg, Cycle, OpClass, Pc, ReplayCause, SchedPolicyKind, SeqNum, SimConfig,
        SimStats,
    };
}
