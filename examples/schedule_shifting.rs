//! Schedule Shifting (paper §5.1): always wake the dependents of the
//! *second* load of an issue group one cycle late, so an L1D bank
//! conflict between the two loads no longer forces a replay.
//!
//! This example runs the bank-conflict-heavy kernels with and without
//! Schedule Shifting and prints the recovered performance and the
//! vanished `RpldBank` µ-ops.
//!
//! ```text
//! cargo run --release --example schedule_shifting
//! ```

use speculative_scheduling::core::{RunLength, RunRequest};
use speculative_scheduling::prelude::*;
use speculative_scheduling::types::SimError;
use speculative_scheduling::workloads::kernels;

fn machine(shifting: bool) -> SimConfig {
    SimConfig::builder()
        .issue_to_execute_delay(4)
        .sched_policy(SchedPolicyKind::AlwaysHit)
        .banked_l1d(true)
        .schedule_shifting(shifting)
        .build()
}

type KernelFn = fn(u64) -> speculative_scheduling::workloads::KernelSpec;

fn main() -> Result<(), SimError> {
    let kernels: [(&str, KernelFn); 4] = [
        ("crafty_like", kernels::crafty_like),
        ("hash_probe", kernels::hash_probe),
        ("stencil_conflict", kernels::stencil_conflict),
        ("matrix_fp", kernels::matrix_fp),
    ];
    println!(
        "{:18} {:>9} {:>9} {:>9} {:>12} {:>12}",
        "kernel", "IPC base", "IPC shift", "speedup", "RpldBank", "RpldBank'"
    );
    for (name, k) in kernels {
        let base = RunRequest::kernel(k(7))
            .custom_config(machine(false))
            .length(RunLength::SMOKE)
            .execute()?
            .stats;
        let shift = RunRequest::kernel(k(7))
            .custom_config(machine(true))
            .length(RunLength::SMOKE)
            .execute()?
            .stats;
        println!(
            "{:18} {:>9.3} {:>9.3} {:>8.1}% {:>12} {:>12}",
            name,
            base.ipc(),
            shift.ipc(),
            (shift.ipc() / base.ipc() - 1.0) * 100.0,
            base.replayed_bank,
            shift.replayed_bank,
        );
    }
    println!();
    println!(
        "The paper reports a 74.8% average reduction in bank-conflict replays\n\
         and +2.9% performance; on these conflict-dominated kernels the effect\n\
         is far larger because the synthetic load pairs conflict every iteration."
    );
    Ok(())
}
