//! Pipeline observability: capture a µ-op window and render it as an
//! ASCII pipeview, then diff two wakeup policies over the same window.
//!
//! ```text
//! cargo run --release --example pipeview
//! ```
//!
//! The same capture renders as Perfetto JSON via
//! `trace::perfetto::export_chrome_trace` (or the `experiments trace`
//! subcommand with `--format perfetto`) for a zoomable timeline at
//! <https://ui.perfetto.dev>.

use speculative_scheduling::core::Simulator;
use speculative_scheduling::prelude::*;
use speculative_scheduling::trace::{pipeview, CaptureSink, TraceEvent};
use speculative_scheduling::types::SimError;
use speculative_scheduling::workloads::{kernels, KernelTrace};

/// Captures µ-ops `0..window` of a pointer chase under `policy`.
fn capture(policy: SchedPolicyKind, window: u64) -> Result<Vec<TraceEvent>, SimError> {
    let cfg = SimConfig::builder()
        .issue_to_execute_delay(4)
        .sched_policy(policy)
        .banked_l1d(true)
        .build();
    let mut sim = Simulator::with_sink(
        cfg,
        KernelTrace::new(kernels::ptr_chase_big(7)),
        CaptureSink::with_window(0..window),
    );
    // Committed sequence numbers are dense, so running until `window`
    // µ-ops have committed completes every lifecycle in the window.
    sim.try_run_committed(window)?;
    Ok(sim.into_sink().into_events())
}

fn main() -> Result<(), SimError> {
    const WINDOW: u64 = 48;

    // One lane per µ-op: F fetch, D dispatch, w speculative wakeup,
    // I issue, e/E execute, R replay-squash, r recovery buffer,
    // C commit, X flush.
    let always_hit = capture(SchedPolicyKind::AlwaysHit, WINDOW)?;
    println!("== AlwaysHit on ptr_chase_big (µ-ops 0..{WINDOW}) ==");
    println!("{}", pipeview::render(&always_hit));

    // Same kernel, conservative wakeup: no speculation, no replays —
    // the diff shows exactly which µ-ops paid for the difference.
    let conservative = capture(SchedPolicyKind::Conservative, WINDOW)?;
    println!("== AlwaysHit vs Conservative, relative-cycle diff ==");
    println!(
        "{}",
        pipeview::diff("AlwaysHit", &always_hit, "Conservative", &conservative)
    );
    Ok(())
}
