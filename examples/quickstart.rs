//! Quickstart: build a machine, run a benchmark, read the statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use speculative_scheduling::core::{RunLength, RunRequest};
use speculative_scheduling::prelude::*;
use speculative_scheduling::types::SimError;
use speculative_scheduling::workloads::kernels;

fn main() -> Result<(), SimError> {
    // The paper's Table 1 machine: 6-issue, 192-entry ROB, banked L1D,
    // 4-cycle issue-to-execute delay, Always-Hit speculative scheduling.
    let cfg = SimConfig::builder()
        .issue_to_execute_delay(4)
        .sched_policy(SchedPolicyKind::AlwaysHit)
        .banked_l1d(true)
        .build();

    // A synthetic benchmark: high-ILP integer code with a same-bank load
    // pair (the 186.crafty regime).
    let stats = RunRequest::kernel(kernels::crafty_like(42))
        .custom_config(cfg)
        .length(RunLength::SMOKE)
        .execute()?
        .stats;

    println!("== crafty_like on SpecSched_4 (banked L1D) ==");
    println!("{stats}");
    println!();
    println!(
        "{} µ-ops were replayed because of L1D bank conflicts — the cost\n\
         Schedule Shifting exists to remove (see examples/schedule_shifting.rs).",
        stats.replayed_bank
    );
    Ok(())
}
