//! Build your own benchmark with the kernel DSL and sweep the
//! issue-to-execute delay on it.
//!
//! The kernel below is a bank-conflicting variant of a dot product: two
//! lock-step streams whose phases differ by 512 bytes land in the same
//! L1D bank every iteration.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use speculative_scheduling::core::{RunLength, RunRequest};
use speculative_scheduling::prelude::*;
use speculative_scheduling::types::SimError;
use speculative_scheduling::workloads::spec::{rf, ri, BodyOp, BranchBehavior, KernelSpec};
use speculative_scheduling::workloads::AddrPattern;

fn dot_product_conflicting(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "dot_conflict",
        vec![
            // i += step
            BodyOp::Compute {
                class: OpClass::IntAlu,
                dst: ri(2),
                src1: ri(2),
                src2: Some(ri(9)),
            },
            // a = x[i]; b = y[i]  (same bank, different set)
            BodyOp::Load {
                dst: rf(1),
                addr_reg: ri(2),
                pattern: 0,
            },
            BodyOp::Load {
                dst: rf(2),
                addr_reg: ri(2),
                pattern: 1,
            },
            // acc += a * b
            BodyOp::Compute {
                class: OpClass::FpMul,
                dst: rf(3),
                src1: rf(1),
                src2: Some(rf(2)),
            },
            BodyOp::Compute {
                class: OpClass::FpAlu,
                dst: rf(4),
                src1: rf(4),
                src2: Some(rf(3)),
            },
        ],
    );
    s.patterns = vec![
        AddrPattern::Stride {
            stride: 8,
            footprint: 8 << 10,
            phase: 0,
        },
        AddrPattern::Stride {
            stride: 8,
            footprint: 8 << 10,
            phase: 512,
        },
    ];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 128 };
    s.seed = seed;
    s
}

fn main() -> Result<(), SimError> {
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "delay", "IPC", "IPC+shift", "RpldBank"
    );
    for delay in [0u64, 2, 4, 6] {
        let base = SimConfig::builder()
            .issue_to_execute_delay(delay)
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .banked_l1d(true)
            .build();
        let shifted = SimConfig::builder()
            .issue_to_execute_delay(delay)
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .banked_l1d(true)
            .schedule_shifting(true)
            .build();
        let s0 = RunRequest::kernel(dot_product_conflicting(1))
            .custom_config(base)
            .length(RunLength::SMOKE)
            .execute()?
            .stats;
        let s1 = RunRequest::kernel(dot_product_conflicting(1))
            .custom_config(shifted)
            .length(RunLength::SMOKE)
            .execute()?
            .stats;
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>12}",
            delay,
            s0.ipc(),
            s1.ipc(),
            s0.replayed_bank
        );
    }
    println!();
    println!(
        "At delay 0 a bank conflict costs one cycle and no replay; as the\n\
         issue-to-execute delay grows, every conflict squashes the whole\n\
         in-flight window — unless Schedule Shifting absorbs it."
    );
    Ok(())
}
