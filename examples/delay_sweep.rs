//! The motivation for speculative scheduling (paper Figures 1–3): as the
//! distance between Issue and Execute grows, stalling load dependents
//! until the hit/miss signal costs `delay` extra cycles per load-use —
//! fatal for pointer-chasing code — while speculative scheduling keeps
//! the load-to-use latency flat.
//!
//! ```text
//! cargo run --release --example delay_sweep
//! ```

use speculative_scheduling::core::{RunLength, RunRequest};
use speculative_scheduling::prelude::*;
use speculative_scheduling::types::SimError;
use speculative_scheduling::workloads::kernels;

fn main() -> Result<(), SimError> {
    println!("list_walk: an L1-resident linked-list traversal (load-to-use critical)");
    println!(
        "{:>6} {:>16} {:>16} {:>10}",
        "delay", "conservative IPC", "speculative IPC", "replays"
    );
    for delay in [0u64, 2, 4, 6] {
        let conservative = SimConfig::builder()
            .issue_to_execute_delay(delay)
            .sched_policy(SchedPolicyKind::Conservative)
            .banked_l1d(false)
            .build();
        let speculative = SimConfig::builder()
            .issue_to_execute_delay(delay)
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .banked_l1d(false)
            .build();
        let c = RunRequest::kernel(kernels::list_walk(1))
            .custom_config(conservative)
            .length(RunLength::SMOKE)
            .execute()?
            .stats;
        let s = RunRequest::kernel(kernels::list_walk(1))
            .custom_config(speculative)
            .length(RunLength::SMOKE)
            .execute()?
            .stats;
        println!(
            "{:>6} {:>16.3} {:>16.3} {:>10}",
            delay,
            c.ipc(),
            s.ipc(),
            s.replayed_total()
        );
    }
    println!();
    println!(
        "Conservative scheduling pays `delay` extra cycles per list link\n\
         (4-cycle load-to-use becomes 4+delay); speculative scheduling stays\n\
         flat and, since the list is L1-resident, pays ~no replays for it."
    );
    Ok(())
}
