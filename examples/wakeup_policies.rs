//! The wakeup-policy spectrum (paper §5.2–§5.3): from never speculating
//! on load latency (`Conservative`) to always assuming an L1 hit
//! (`AlwaysHit`), with the global counter, the per-PC filter, and the
//! criticality-gated policy in between.
//!
//! Runs the high-miss-rate kernels under every policy and shows the
//! replay/performance trade-off each one picks.
//!
//! ```text
//! cargo run --release --example wakeup_policies
//! ```

use speculative_scheduling::core::{RunLength, RunRequest};
use speculative_scheduling::prelude::*;
use speculative_scheduling::types::SimError;
use speculative_scheduling::workloads::kernels;

fn main() -> Result<(), SimError> {
    let policies = [
        SchedPolicyKind::Conservative,
        SchedPolicyKind::AlwaysHit,
        SchedPolicyKind::GlobalCounter,
        SchedPolicyKind::FilterAndCounter,
        SchedPolicyKind::Criticality,
    ];
    for (name, k) in [
        (
            "stream_all_miss (462.libquantum regime)",
            kernels::stream_all_miss as fn(u64) -> _,
        ),
        ("xalanc_like (483.xalancbmk regime)", kernels::xalanc_like),
        ("hot_cold_mix (unstable loads)", kernels::hot_cold_mix),
    ] {
        println!("== {name} ==");
        println!(
            "{:18} {:>7} {:>10} {:>10} {:>11} {:>11}",
            "policy", "IPC", "RpldMiss", "RpldBank", "spec loads", "consv loads"
        );
        for p in policies {
            let cfg = SimConfig::builder()
                .issue_to_execute_delay(4)
                .sched_policy(p)
                .banked_l1d(true)
                .schedule_shifting(p == SchedPolicyKind::Criticality)
                .build();
            let s = RunRequest::kernel(k(3))
                .custom_config(cfg)
                .length(RunLength::SMOKE)
                .execute()?
                .stats;
            println!(
                "{:18} {:>7.3} {:>10} {:>10} {:>11} {:>11}",
                format!("{p:?}"),
                s.ipc(),
                s.replayed_miss,
                s.replayed_bank,
                s.loads_spec_woken,
                s.loads_conservative,
            );
        }
        println!();
    }
    println!(
        "Always-Hit buys wakeup aggressiveness with replays; the filter keeps\n\
         the speculation only where the load reliably hits, and criticality\n\
         additionally refuses to gamble on loads that never block the ROB."
    );
    Ok(())
}
