//! Replay schemes (paper §2.1): the same schedule misspeculations cost
//! very different amounts depending on how the pipeline repairs them.
//!
//! * **Squash** (Alpha 21264): everything between Issue and Execute dies.
//! * **Selective** (Pentium 4): only the µ-op missing its operand
//!   recycles; independents keep flowing.
//! * **Refetch**: treat it like a branch misprediction — the strawman the
//!   paper dismisses as "clearly costly".
//!
//! The paper's replay-*reduction* mechanisms are agnostic of this choice;
//! run with `--crit` to see criticality gating help under every scheme.
//!
//! ```text
//! cargo run --release --example replay_schemes [-- --crit]
//! ```

use speculative_scheduling::core::{RunLength, RunRequest};
use speculative_scheduling::prelude::*;
use speculative_scheduling::types::{ReplayScheme, SimError};
use speculative_scheduling::workloads::kernels;

fn main() -> Result<(), SimError> {
    let crit = std::env::args().any(|a| a == "--crit");
    let policy = if crit {
        SchedPolicyKind::Criticality
    } else {
        SchedPolicyKind::AlwaysHit
    };
    println!(
        "policy: {policy:?}{}",
        if crit { " + Schedule Shifting" } else { "" }
    );
    println!(
        "{:12} {:>24} {:>24}",
        "scheme", "crafty_like IPC/replays", "xalanc_like IPC/replays"
    );
    for scheme in [
        ReplayScheme::Squash,
        ReplayScheme::Selective,
        ReplayScheme::Refetch,
    ] {
        let mut cells = Vec::new();
        for k in [kernels::crafty_like as fn(u64) -> _, kernels::xalanc_like] {
            let cfg = SimConfig::builder()
                .issue_to_execute_delay(4)
                .sched_policy(policy)
                .schedule_shifting(crit)
                .banked_l1d(true)
                .replay_scheme(scheme)
                .build();
            let s = RunRequest::kernel(k(7))
                .custom_config(cfg)
                .length(RunLength::SMOKE)
                .execute()?
                .stats;
            cells.push(format!("{:.3} / {}", s.ipc(), s.replayed_total()));
        }
        println!(
            "{:12} {:>24} {:>24}",
            format!("{scheme:?}"),
            cells[0],
            cells[1]
        );
    }
    println!(
        "\nSelective replay wastes the least work per misspeculation; refetch\n\
         the most. The paper's mechanisms attack the *causes*, so they help\n\
         under every scheme (compare with and without --crit)."
    );
    Ok(())
}
